"""The discrete-event cluster that deploys and runs a topology.

The cluster is the reproduction's substitute for a physical Storm cluster.
It creates one object per task (parallel instance) of every component,
routes emitted tuples to subscriber tasks according to the registered
groupings, keeps a simulated clock driven by the ``timestamp`` slot of the
tuples flowing through the system, and counts every message per
(producer component, consumer component) link and per consumer task.

Batch routing
-------------
The routing unit is the :class:`~repro.streamsim.tuples.EmissionBatch`: one
run of same-stream emissions of a single component invocation.  Per batch
the cluster advances the clock **once** (all messages of a batch share the
timestamp slot value), consults each subscriber's grouping **once**
(:meth:`~repro.streamsim.groupings.Grouping.select_batch`), splits the
batch into per-task sub-batches in first-occurrence order, and delivers
each sub-batch with **one accounting update** and one
:meth:`~repro.streamsim.components.Bolt.execute_batch` call.  Messages of a
batch bound for the same task are therefore delivered contiguously; the
paper topology's batches never interleave two consumers of one stream, so
delivery order matches the old per-message routing exactly (pinned by the
wire-equivalence tests).

Execution model
---------------
*How* tuples are pushed through the deployed graph is delegated to a
pluggable :class:`~repro.streamsim.executors.Executor`.  The default
:class:`~repro.streamsim.executors.InlineExecutor` processes batches
depth-first in arrival order in this process: it polls one spout task,
routes everything it emitted, then keeps draining the global FIFO queue
until no tuple is in flight before polling the next spout.  This is
equivalent to a Storm cluster that is never backlogged, which is the regime
the paper's experiments operate in (their metrics are logical counts per
document, not queueing delays).  The
:class:`~repro.streamsim.executors.ShardedProcessExecutor` runs a sink layer
of components across worker processes, shipping the same slot-tuple batches
as its IPC unit; the cluster consults its executor at delivery, tick and
flush time so remote tasks are serviced transparently.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from .components import Bolt, Component
from .groupings import Grouping
from .topology import Topology
from .tuples import EmissionBatch, OutputCollector, TupleMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .executors import Executor


@dataclass(slots=True)
class MessageAccounting:
    """Counts of tuples delivered between components and to tasks."""

    per_link: dict[tuple[str, str], int] = field(default_factory=dict)
    per_task: dict[int, int] = field(default_factory=dict)
    total: int = 0

    def record(self, producer: str, consumer: str, task_id: int) -> None:
        self.record_batch(producer, consumer, task_id, 1)

    def record_batch(
        self, producer: str, consumer: str, task_id: int, count: int
    ) -> None:
        """Account one delivered link batch of ``count`` tuples."""
        key = (producer, consumer)
        per_link = self.per_link
        per_link[key] = per_link.get(key, 0) + count
        per_task = self.per_task
        per_task[task_id] = per_task.get(task_id, 0) + count
        self.total += count

    def link(self, producer: str, consumer: str) -> int:
        return self.per_link.get((producer, consumer), 0)

    def merge(self, other: "MessageAccounting") -> None:
        """Fold another accounting (e.g. one worker shard's) into this one.

        Counts are additive, so merging is order-independent; the sharded
        executor still merges shards in shard order for determinism of any
        future non-commutative bookkeeping.
        """
        for key, count in other.per_link.items():
            self.per_link[key] = self.per_link.get(key, 0) + count
        for task_id, count in other.per_task.items():
            self.per_task[task_id] = self.per_task.get(task_id, 0) + count
        self.total += other.total


@dataclass(slots=True)
class TaskInfo:
    """One parallel instance of a component."""

    task_id: int
    task_index: int
    component: str
    instance: Component
    collector: OutputCollector
    #: Whether the instance is a bolt (deliverable); set at deployment.
    is_bolt: bool = False
    #: Whether the task is owned by the executor's remote layer.
    is_remote: bool = False


class ClusterContext:
    """Read-only view of the cluster handed to components at prepare time."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster

    def task_ids(self, component: str) -> list[int]:
        """Global task ids of a component, ordered by task index."""
        return [task.task_id for task in self._cluster.tasks_of(component)]

    def parallelism(self, component: str) -> int:
        return len(self._cluster.tasks_of(component))

    def component_of(self, task_id: int) -> str:
        return self._cluster.task(task_id).component

    @property
    def current_time(self) -> float:
        return self._cluster.current_time

    def request_handoff(self, task_id: int, components: Sequence[str]) -> None:
        """Ask the cluster for a coordinated state handoff (live repartition).

        Queued, not immediate: the handoff runs at the next quiescent point
        (the in-flight queue empty), where the cluster quiesces the listed
        component layers, two-phase-migrates their state and then calls the
        requesting bolt's ``commit_staged``/``abort_staged`` callback.
        """
        self._cluster._request_handoff(task_id, tuple(components))


class Cluster:
    """Deploys a topology and runs it to completion via its executor."""

    def __init__(
        self,
        topology: Topology,
        tick_interval: float = 1.0,
        executor: "Executor | None" = None,
        link_batch_size: int = 0,
    ) -> None:
        topology.validate()
        if executor is None:
            from .executors import InlineExecutor

            executor = InlineExecutor()
        if link_batch_size < 0:
            raise ValueError("link_batch_size must be non-negative (0 = unlimited)")
        self.topology = topology
        self.accounting = MessageAccounting()
        self.current_time = 0.0
        self.link_batch_size = link_batch_size
        self._tick_interval = tick_interval
        self._last_tick = 0.0
        self._queue: deque[tuple[TaskInfo, list[TupleMessage]]] = deque()
        #: Pending coordinated-handoff requests (live repartitioning) and
        #: their run-level accounting, read by the pipeline after the run.
        self._handoff_requests: deque[tuple[int, tuple[str, ...]]] = deque()
        self.migration_stall_seconds = 0.0
        self.migration_failures: list[str] = []
        self._tasks: list[TaskInfo] = []
        self._tasks_by_component: dict[str, list[TaskInfo]] = {}
        self._create_tasks()
        # Routing table: producer -> stream name -> [(consumer tasks, grouping)].
        # Stream keys are plain strings (schemas are str subclasses), so the
        # lookup works whether a stream was declared with a schema or not.
        self._routes: dict[str, dict[str, list[tuple[list[TaskInfo], Grouping]]]] = {}
        self._direct_consumers: dict[tuple[str, str], set[str]] = {}
        self._build_routes()
        self._context = ClusterContext(self)
        self._executor = executor
        # The executor claims its remote tasks before any component is
        # prepared: remote tasks then prepare in their workers only, and
        # their prepare-time emissions are captured (and later relayed)
        # worker-side.
        self._executor.attach(self)
        for task in self._tasks:
            task.is_remote = self._executor.owns(task.task_id)
        self._prepare_tasks()

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def _create_tasks(self) -> None:
        task_id = 0
        for spec in self.topology.components.values():
            instances = []
            for task_index in range(spec.parallelism):
                instance = spec.factory()
                collector = OutputCollector(
                    spec.name, task_id, max_batch=self.link_batch_size
                )
                info = TaskInfo(
                    task_id=task_id,
                    task_index=task_index,
                    component=spec.name,
                    instance=instance,
                    collector=collector,
                    is_bolt=isinstance(instance, Bolt),
                )
                instances.append(info)
                self._tasks.append(info)
                task_id += 1
            self._tasks_by_component[spec.name] = instances

    def _build_routes(self) -> None:
        for subscription in self.topology.subscriptions:
            consumer_tasks = self._tasks_by_component[subscription.consumer]
            stream = str(subscription.stream)
            self._routes.setdefault(subscription.producer, {}).setdefault(
                stream, []
            ).append((consumer_tasks, subscription.grouping))
            self._direct_consumers.setdefault(
                (subscription.producer, stream), set()
            ).add(subscription.consumer)

    def _prepare_tasks(self) -> None:
        for task in self._tasks:
            if task.is_remote:
                # Remote tasks prepare inside their worker (the driver-side
                # instance is an inert placeholder, replaced at finalise);
                # preparing both copies would duplicate prepare-time
                # emissions.
                continue
            task.instance.prepare(
                component_name=task.component,
                task_index=task.task_index,
                task_id=task.task_id,
                collector=task.collector,
                context=self._context,
            )
            # Components may emit during prepare (e.g. initial control tuples).
            self._route_emissions(task)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def tasks_of(self, component: str) -> list[TaskInfo]:
        if component not in self._tasks_by_component:
            raise KeyError(f"unknown component {component!r}")
        return self._tasks_by_component[component]

    def task(self, task_id: int) -> TaskInfo:
        return self._tasks[task_id]

    def instances_of(self, component: str) -> list[Component]:
        """The live operator objects of a component (inspection in tests)."""
        return [task.instance for task in self.tasks_of(component)]

    @property
    def context(self) -> ClusterContext:
        return self._context

    @property
    def executor(self) -> "Executor":
        """The execution engine driving this cluster."""
        return self._executor

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, max_spout_calls: int | None = None) -> int:
        """Run until every spout is exhausted (or the call budget is spent).

        Delegates to the executor (the inline depth-first loop by default).
        Returns the number of spout invocations that produced output.  A
        budgeted stop is treated as end of stream: buffered bolts (e.g. the
        Disseminator's partial notification micro-batch) are flushed before
        returning, so every routed tuple is delivered and inspectable —
        physical message counts of a budget-sliced run may therefore exceed
        those of one continuous run.
        """
        return self._executor.run(self, max_spout_calls=max_spout_calls)

    def process(self, message: TupleMessage, component: str, task_index: int = 0) -> None:
        """Inject a tuple directly into one bolt task (useful in tests)."""
        task = self.tasks_of(component)[task_index]
        if task.is_remote:
            raise RuntimeError(
                f"cannot inject into {component!r}: it is owned by the "
                f"remote layer of {type(self._executor).__name__}; use the "
                "inline executor for direct-injection tests"
            )
        if not task.is_bolt:
            raise RuntimeError(f"cannot deliver tuples to spout {component!r}")
        self._deliver(task, [message])
        self._drain_queue()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _route_emissions(self, task: TaskInfo) -> int:
        batches = task.collector.drain()
        if not batches:
            return 0
        emitted = 0
        component = task.component
        for batch in batches:
            emitted += len(batch.messages)
            self._route_batch(component, batch)
        return emitted

    def _route_batch(self, producer: str, batch: EmissionBatch) -> None:
        """Route one emission batch: clock once, grouping once, enqueue."""
        timestamp = batch.timestamp
        if timestamp is not None:
            self._advance_clock(timestamp)
        messages = batch.messages
        targets = batch.targets
        queue = self._queue
        tasks = self._tasks
        if targets is not None:
            allowed = self._direct_consumers.get((producer, batch.schema), ())
            per_task: dict[int, list[TupleMessage]] = {}
            for message, target in zip(messages, targets):
                if tasks[target].component not in allowed:
                    raise RuntimeError(
                        f"direct emission from {producer!r} to task of "
                        f"{tasks[target].component!r} without a subscription "
                        f"on stream {batch.schema!r}"
                    )
                bucket = per_task.get(target)
                if bucket is None:
                    per_task[target] = [message]
                else:
                    bucket.append(message)
            for target, bucket in per_task.items():
                queue.append((tasks[target], bucket))
            return
        routes = self._routes.get(producer)
        if routes is None:
            return
        subscribers = routes.get(batch.schema)
        if subscribers is None:
            return
        if len(messages) == 1:
            # Hot path: the overwhelmingly common single-message batch.
            message = messages[0]
            for consumer_tasks, grouping in subscribers:
                for index in grouping.select(message, len(consumer_tasks)):
                    queue.append((consumer_tasks[index], messages))
            return
        for consumer_tasks, grouping in subscribers:
            selections = grouping.select_batch(messages, len(consumer_tasks))
            # Split into per-task sub-batches in first-occurrence order
            # (dict insertion order), preserving message order per task.
            per_index: dict[int, list[TupleMessage]] = {}
            for message, indices in zip(messages, selections):
                for index in indices:
                    bucket = per_index.get(index)
                    if bucket is None:
                        per_index[index] = [message]
                    else:
                        bucket.append(message)
            for index, bucket in per_index.items():
                queue.append((consumer_tasks[index], bucket))

    def _drain_queue(self) -> None:
        """Deliver until nothing is in flight, then serve handoff requests.

        Handoffs deliberately wait for the queue to empty: with the inline
        depth-first discipline (one spout document per drain cycle) the
        empty queue is a clean per-document boundary, so a swap staged
        while document *r* cascaded takes effect before document *r + 1*
        is routed — exactly the semantics the splice-equivalence suites
        pin.  Coordination itself emits and enqueues (migration payloads
        travelling to the Tracker), hence the outer loop.
        """
        while True:
            self._drain_basic()
            if not self._handoff_requests:
                return
            self._run_handoffs()

    def _drain_basic(self) -> None:
        """The plain delivery loop, never entering handoff coordination."""
        queue = self._queue
        while queue:
            task, messages = queue.popleft()
            self._deliver(task, messages)

    def _flush_bolts(self) -> None:
        """End-of-stream flush: let every bolt emit buffered output.

        Flush passes repeat until a full pass releases nothing, so tuples
        released by an upstream bolt's flush that were then buffered by a
        downstream buffering bolt are flushed in a later pass — chains of
        buffering bolts drain transitively.  ``flush`` is therefore called
        at least once and possibly several times per bolt; implementations
        must tolerate repeated calls (a drained buffer flushes to nothing).
        """
        while True:
            released = 0
            for task in self._tasks:
                if task.is_remote or not task.is_bolt:
                    continue
                task.instance.flush()  # type: ignore[union-attr]
                released += self._route_emissions(task)
            self._drain_queue()
            # Remote bolts flush in their workers; their buffered emissions
            # are relayed here and routed like any other batch.
            released += self._executor.flush_remote()
            self._drain_queue()
            if not released:
                return

    # ------------------------------------------------------------------ #
    # Coordinated state handoff (live repartitioning)
    # ------------------------------------------------------------------ #
    def _request_handoff(self, task_id: int, components: tuple[str, ...]) -> None:
        self._handoff_requests.append((task_id, components))

    def _run_handoffs(self) -> None:
        while self._handoff_requests:
            task_id, components = self._handoff_requests.popleft()
            self._coordinate_handoff(self._tasks[task_id], components)

    def _coordinate_handoff(
        self, requester: TaskInfo, components: tuple[str, ...]
    ) -> None:
        """Quiesce → two-phase migrate → install → resume, or abort cleanly.

        The protocol is duck-typed against the requesting bolt
        (``staged_handoff`` / ``commit_staged`` / ``abort_staged``) and the
        migrating layers' bolts (``prepare_migration`` / ``commit_migration``
        / ``abort_migration``); remote layers go through the executor's
        ``migrate_prepare`` / ``migrate_commit`` / ``migrate_abort`` hooks.

        Phase 1 (*prepare*) is side-effect-free on every participant, so a
        raise — or a dead worker — aborts the whole handoff with all state
        and the old assignment intact.  Phase 2 (*commit*) ships each
        payload to its subscribers (the Tracker) and resets the counters;
        only then is the staged assignment installed on the requester.  No
        clock tick can fire during coordination: every batch routed here
        carries a timestamp at or below the current simulation time.
        """
        bolt = requester.instance
        staged = getattr(bolt, "staged_handoff", None)
        if staged is None:
            # A second request for an already-resolved handoff (e.g. two
            # staging bolts racing in one drain window) is a no-op.
            return
        started = time.perf_counter()
        # Quiesce: everything in flight — including buffered notification
        # micro-batches — is delivered under the old assignment first.
        self._quiesce()
        local_tasks: list[TaskInfo] = []
        remote_tasks: list[TaskInfo] = []
        for name in components:
            for task in self.tasks_of(name):
                (remote_tasks if task.is_remote else local_tasks).append(task)
        payloads: dict[int, list] = {}
        error: str | None = None
        for task in local_tasks:
            try:
                payloads[task.task_id] = task.instance.prepare_migration()
            except Exception as exc:  # noqa: BLE001 - abort on any failure
                error = (
                    f"prepare_migration failed on {task.component}"
                    f"[task {task.task_id}]: {exc!r}"
                )
                break
        if error is None and remote_tasks:
            error = self._executor.migrate_prepare(
                [task.task_id for task in remote_tasks]
            )
        if error is not None:
            for task in local_tasks:
                if task.task_id in payloads:
                    task.instance.abort_migration()
            if remote_tasks:
                self._executor.migrate_abort()
            stall = time.perf_counter() - started
            bolt.abort_staged(error, stall)
            self.migration_failures.append(error)
            self.migration_stall_seconds += stall
            return
        migrated = 0
        for task in local_tasks:
            migrated += task.instance.commit_migration(
                payloads[task.task_id], staged.timestamp
            )
            self._route_emissions(task)
        if remote_tasks:
            migrated += self._executor.migrate_commit(staged.timestamp)
        # Migrated coefficients reach the Tracker before routing resumes
        # under the new map.
        self._drain_basic()
        stall = time.perf_counter() - started
        bolt.commit_staged(migrated, stall)
        self.migration_stall_seconds += stall

    def _quiesce(self) -> None:
        """Flush-and-deliver until quiet, without re-entering handoffs.

        The same repeat-until-quiet discipline as the end-of-stream
        :meth:`_flush_bolts`, but built on :meth:`_drain_basic`: a handoff
        request queued by a delivery during the quiesce must wait for the
        current coordination to finish, not nest inside it.
        """
        while True:
            released = 0
            for task in self._tasks:
                if task.is_remote or not task.is_bolt:
                    continue
                task.instance.flush()  # type: ignore[union-attr]
                released += self._route_emissions(task)
            self._drain_basic()
            released += self._executor.flush_remote()
            self._drain_basic()
            if not released:
                return

    def _deliver(self, task: TaskInfo, messages: Sequence[TupleMessage]) -> None:
        if task.is_remote:
            # Remote tasks account for their own deliveries; the shard's
            # accounting is merged back at finalisation.
            self._executor.deliver_remote(task, messages)
            return
        if not task.is_bolt:
            raise RuntimeError(f"cannot deliver tuples to spout {task.component!r}")
        self.accounting.record_batch(
            messages[0].source_component, task.component, task.task_id, len(messages)
        )
        task.instance.execute_batch(messages)  # type: ignore[union-attr]
        self._route_emissions(task)

    def _advance_clock(self, timestamp: float) -> None:
        if timestamp > self.current_time:
            self.current_time = float(timestamp)
        elapsed = self.current_time - self._last_tick
        if elapsed >= self._tick_interval:
            # Grid-aligned ticks: advance the tick clock to the last grid
            # point at or before the current time instead of re-anchoring
            # at the (document-granularity) timestamp that crossed it, so
            # tick boundaries — and everything scheduled off them, like
            # Calculator report rounds — stay on a fixed grid instead of
            # drifting forward with every crossing (ROADMAP item 4).
            self._last_tick += self._tick_interval * int(elapsed / self._tick_interval)
            self._tick_all()

    def _tick_all(self) -> None:
        for task in self._tasks:
            if task.is_remote or not task.is_bolt:
                continue
            task.instance.tick(self.current_time)  # type: ignore[union-attr]
            self._route_emissions(task)
        # Remote bolts receive the tick through their shard queues, in the
        # same order relative to their deliveries as the inline engine.
        self._executor.tick_remote(self.current_time)


def run_topology(
    topology: Topology,
    max_spout_calls: int | None = None,
    tick_interval: float = 1.0,
    executor: "Executor | None" = None,
    link_batch_size: int = 0,
) -> Cluster:
    """Deploy and run a topology; returns the cluster for inspection."""
    cluster = Cluster(
        topology,
        tick_interval=tick_interval,
        executor=executor,
        link_batch_size=link_batch_size,
    )
    cluster.run(max_spout_calls=max_spout_calls)
    return cluster


def iter_bolts(cluster: Cluster, component: str) -> Iterable[Bolt]:
    """Typed helper for tests: the bolt instances of a component."""
    for instance in cluster.instances_of(component):
        assert isinstance(instance, Bolt)
        yield instance
