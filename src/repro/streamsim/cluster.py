"""The discrete-event cluster that deploys and runs a topology.

The cluster is the reproduction's substitute for a physical Storm cluster.
It creates one object per task (parallel instance) of every component,
routes emitted tuples to subscriber tasks according to the registered
groupings, keeps a simulated clock driven by the ``timestamp`` field of the
tuples flowing through the system, and counts every message per
(producer component, consumer component) link and per consumer task.

Execution model
---------------
*How* tuples are pushed through the deployed graph is delegated to a
pluggable :class:`~repro.streamsim.executors.Executor`.  The default
:class:`~repro.streamsim.executors.InlineExecutor` processes tuples
depth-first in arrival order in this process: it polls one spout task,
routes everything it emitted, then keeps draining the global FIFO queue
until no tuple is in flight before polling the next spout.  This is
equivalent to a Storm cluster that is never backlogged, which is the regime
the paper's experiments operate in (their metrics are logical counts per
document, not queueing delays).  The
:class:`~repro.streamsim.executors.ShardedProcessExecutor` runs a sink layer
of components across worker processes while keeping the same logical
semantics; the cluster consults its executor at delivery, tick and flush
time so remote tasks are serviced transparently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from .components import Bolt, Component
from .topology import Topology
from .tuples import Emission, OutputCollector, TupleMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .executors import Executor


@dataclass(slots=True)
class MessageAccounting:
    """Counts of tuples delivered between components and to tasks."""

    per_link: dict[tuple[str, str], int] = field(default_factory=dict)
    per_task: dict[int, int] = field(default_factory=dict)
    total: int = 0

    def record(self, producer: str, consumer: str, task_id: int) -> None:
        key = (producer, consumer)
        self.per_link[key] = self.per_link.get(key, 0) + 1
        self.per_task[task_id] = self.per_task.get(task_id, 0) + 1
        self.total += 1

    def link(self, producer: str, consumer: str) -> int:
        return self.per_link.get((producer, consumer), 0)

    def merge(self, other: "MessageAccounting") -> None:
        """Fold another accounting (e.g. one worker shard's) into this one.

        Counts are additive, so merging is order-independent; the sharded
        executor still merges shards in shard order for determinism of any
        future non-commutative bookkeeping.
        """
        for key, count in other.per_link.items():
            self.per_link[key] = self.per_link.get(key, 0) + count
        for task_id, count in other.per_task.items():
            self.per_task[task_id] = self.per_task.get(task_id, 0) + count
        self.total += other.total


@dataclass(slots=True)
class TaskInfo:
    """One parallel instance of a component."""

    task_id: int
    task_index: int
    component: str
    instance: Component
    collector: OutputCollector


class ClusterContext:
    """Read-only view of the cluster handed to components at prepare time."""

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster

    def task_ids(self, component: str) -> list[int]:
        """Global task ids of a component, ordered by task index."""
        return [task.task_id for task in self._cluster.tasks_of(component)]

    def parallelism(self, component: str) -> int:
        return len(self._cluster.tasks_of(component))

    def component_of(self, task_id: int) -> str:
        return self._cluster.task(task_id).component

    @property
    def current_time(self) -> float:
        return self._cluster.current_time


class Cluster:
    """Deploys a topology and runs it to completion via its executor."""

    def __init__(
        self,
        topology: Topology,
        tick_interval: float = 1.0,
        executor: "Executor | None" = None,
    ) -> None:
        topology.validate()
        if executor is None:
            from .executors import InlineExecutor

            executor = InlineExecutor()
        self.topology = topology
        self.accounting = MessageAccounting()
        self.current_time = 0.0
        self._tick_interval = tick_interval
        self._last_tick = 0.0
        self._queue: deque[tuple[int, TupleMessage]] = deque()
        self._tasks: list[TaskInfo] = []
        self._tasks_by_component: dict[str, list[TaskInfo]] = {}
        self._create_tasks()
        # Routing table: (producer, stream) -> [(consumer tasks, grouping)].
        self._routes: dict[tuple[str, str], list[tuple[list[TaskInfo], object]]] = {}
        self._direct_consumers: dict[tuple[str, str], set[str]] = {}
        self._build_routes()
        self._context = ClusterContext(self)
        self._executor = executor
        # The executor claims its remote tasks before any component is
        # prepared: remote tasks then prepare in their workers only, and
        # their prepare-time emissions are captured (and later relayed)
        # worker-side.
        self._executor.attach(self)
        self._prepare_tasks()

    # ------------------------------------------------------------------ #
    # Deployment
    # ------------------------------------------------------------------ #
    def _create_tasks(self) -> None:
        task_id = 0
        for spec in self.topology.components.values():
            instances = []
            for task_index in range(spec.parallelism):
                instance = spec.factory()
                collector = OutputCollector(spec.name, task_id)
                info = TaskInfo(
                    task_id=task_id,
                    task_index=task_index,
                    component=spec.name,
                    instance=instance,
                    collector=collector,
                )
                instances.append(info)
                self._tasks.append(info)
                task_id += 1
            self._tasks_by_component[spec.name] = instances

    def _build_routes(self) -> None:
        for subscription in self.topology.subscriptions:
            key = (subscription.producer, subscription.stream)
            consumer_tasks = self._tasks_by_component[subscription.consumer]
            self._routes.setdefault(key, []).append(
                (consumer_tasks, subscription.grouping)
            )
            self._direct_consumers.setdefault(key, set()).add(subscription.consumer)

    def _prepare_tasks(self) -> None:
        for task in self._tasks:
            if self._executor.owns(task.task_id):
                # Remote tasks prepare inside their worker (the driver-side
                # instance is an inert placeholder, replaced at finalise);
                # preparing both copies would duplicate prepare-time
                # emissions.
                continue
            task.instance.prepare(
                component_name=task.component,
                task_index=task.task_index,
                task_id=task.task_id,
                collector=task.collector,
                context=self._context,
            )
            # Components may emit during prepare (e.g. initial control tuples).
            self._route_emissions(task)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def tasks_of(self, component: str) -> list[TaskInfo]:
        if component not in self._tasks_by_component:
            raise KeyError(f"unknown component {component!r}")
        return self._tasks_by_component[component]

    def task(self, task_id: int) -> TaskInfo:
        return self._tasks[task_id]

    def instances_of(self, component: str) -> list[Component]:
        """The live operator objects of a component (inspection in tests)."""
        return [task.instance for task in self.tasks_of(component)]

    @property
    def context(self) -> ClusterContext:
        return self._context

    @property
    def executor(self) -> "Executor":
        """The execution engine driving this cluster."""
        return self._executor

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, max_spout_calls: int | None = None) -> int:
        """Run until every spout is exhausted (or the call budget is spent).

        Delegates to the executor (the inline depth-first loop by default).
        Returns the number of spout invocations that produced output.  A
        budgeted stop is treated as end of stream: buffered bolts (e.g. the
        Disseminator's partial notification micro-batch) are flushed before
        returning, so every routed tuple is delivered and inspectable —
        physical message counts of a budget-sliced run may therefore exceed
        those of one continuous run.
        """
        return self._executor.run(self, max_spout_calls=max_spout_calls)

    def process(self, message: TupleMessage, component: str, task_index: int = 0) -> None:
        """Inject a tuple directly into one bolt task (useful in tests)."""
        task = self.tasks_of(component)[task_index]
        if self._executor.owns(task.task_id):
            raise RuntimeError(
                f"cannot inject into {component!r}: it is owned by the "
                f"remote layer of {type(self._executor).__name__}; use the "
                "inline executor for direct-injection tests"
            )
        self._deliver(task, message)
        self._drain_queue()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _route_emissions(self, task: TaskInfo) -> int:
        emitted = 0
        for emission in task.collector.drain():
            self._route(task.component, emission)
            emitted += 1
        return emitted

    def _route(self, producer: str, emission: Emission) -> None:
        message = emission.message
        self._advance_clock(message)
        key = (producer, message.stream)
        if emission.direct_task is not None:
            target = self._tasks[emission.direct_task]
            if target.component not in self._direct_consumers.get(key, ()):
                raise RuntimeError(
                    f"direct emission from {producer!r} to task of "
                    f"{target.component!r} without a subscription on stream "
                    f"{message.stream!r}"
                )
            self._queue.append((target.task_id, message))
            return
        for consumer_tasks, grouping in self._routes.get(key, ()):
            indices = grouping.select(message, len(consumer_tasks))
            for index in indices:
                self._queue.append((consumer_tasks[index].task_id, message))

    def _drain_queue(self) -> None:
        while self._queue:
            task_id, message = self._queue.popleft()
            task = self._tasks[task_id]
            self._deliver(task, message)

    def _flush_bolts(self) -> None:
        """End-of-stream flush: let every bolt emit buffered output.

        Flush passes repeat until a full pass releases nothing, so tuples
        released by an upstream bolt's flush that were then buffered by a
        downstream buffering bolt are flushed in a later pass — chains of
        buffering bolts drain transitively.  ``flush`` is therefore called
        at least once and possibly several times per bolt; implementations
        must tolerate repeated calls (a drained buffer flushes to nothing).
        """
        while True:
            released = 0
            for task in self._tasks:
                if self._executor.owns(task.task_id):
                    continue
                if isinstance(task.instance, Bolt):
                    task.instance.flush()
                    released += self._route_emissions(task)
            self._drain_queue()
            # Remote bolts flush in their workers; their buffered emissions
            # are relayed here and routed like any other tuple.
            released += self._executor.flush_remote()
            self._drain_queue()
            if not released:
                return

    def _deliver(self, task: TaskInfo, message: TupleMessage) -> None:
        bolt = task.instance
        if not isinstance(bolt, Bolt):
            raise RuntimeError(f"cannot deliver tuples to spout {task.component!r}")
        if self._executor.owns(task.task_id):
            # Remote tasks account for their own deliveries; the shard's
            # accounting is merged back at finalisation.
            self._executor.deliver_remote(task, message)
            return
        self.accounting.record(message.source_component, task.component, task.task_id)
        bolt.execute(message)
        self._route_emissions(task)

    def _advance_clock(self, message: TupleMessage) -> None:
        timestamp = message.get("timestamp")
        if timestamp is None:
            return
        if timestamp > self.current_time:
            self.current_time = float(timestamp)
        if self.current_time - self._last_tick >= self._tick_interval:
            self._last_tick = self.current_time
            self._tick_all()

    def _tick_all(self) -> None:
        for task in self._tasks:
            if self._executor.owns(task.task_id):
                continue
            if isinstance(task.instance, Bolt):
                task.instance.tick(self.current_time)
                self._route_emissions(task)
        # Remote bolts receive the tick through their shard queues, in the
        # same order relative to their deliveries as the inline engine.
        self._executor.tick_remote(self.current_time)


def run_topology(
    topology: Topology,
    max_spout_calls: int | None = None,
    tick_interval: float = 1.0,
    executor: "Executor | None" = None,
) -> Cluster:
    """Deploy and run a topology; returns the cluster for inspection."""
    cluster = Cluster(topology, tick_interval=tick_interval, executor=executor)
    cluster.run(max_spout_calls=max_spout_calls)
    return cluster


def iter_bolts(cluster: Cluster, component: str) -> Iterable[Bolt]:
    """Typed helper for tests: the bolt instances of a component."""
    for instance in cluster.instances_of(component):
        assert isinstance(instance, Bolt)
        yield instance
