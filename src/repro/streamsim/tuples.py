"""Tuples and streams of the stream-processing substrate.

Storm operators exchange *tuples*: simple lists of named values travelling
on named streams.  The simulator keeps the same model: a
:class:`TupleMessage` carries a mapping of field names to values, the name
of the stream it was emitted on, and provenance information (the component
and task that emitted it) used for accounting and for direct grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

#: Name of the default output stream of every component.
DEFAULT_STREAM = "default"


@dataclass(frozen=True, slots=True)
class TupleMessage:
    """A single tuple flowing between components."""

    values: Mapping[str, Any]
    stream: str = DEFAULT_STREAM
    source_component: str = ""
    source_task: int = -1

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def fields(self) -> tuple[str, ...]:
        return tuple(self.values)


@dataclass(slots=True)
class Emission:
    """An emission request produced by a component before routing.

    ``direct_task`` is the *global* task id of the receiver when the tuple
    is sent with direct grouping; ``None`` means the registered grouping of
    each subscriber decides.
    """

    message: TupleMessage
    direct_task: int | None = None


class OutputCollector:
    """Collects the tuples a component emits during one invocation.

    Mirrors Storm's ``OutputCollector``: components call :meth:`emit` (or
    :meth:`emit_direct` for direct grouping) and the cluster drains the
    collector afterwards and routes the tuples to subscribers.
    """

    def __init__(self, component: str, task_id: int) -> None:
        self._component = component
        self._task_id = task_id
        self._pending: list[Emission] = []

    def emit(self, values: Mapping[str, Any], stream: str = DEFAULT_STREAM) -> None:
        """Emit a tuple on ``stream`` to all subscribers of that stream."""
        self._pending.append(
            Emission(
                TupleMessage(
                    values=dict(values),
                    stream=stream,
                    source_component=self._component,
                    source_task=self._task_id,
                )
            )
        )

    def emit_direct(
        self,
        task_id: int,
        values: Mapping[str, Any],
        stream: str = DEFAULT_STREAM,
    ) -> None:
        """Emit a tuple directly to one task of a subscribed component."""
        self._pending.append(
            Emission(
                TupleMessage(
                    values=dict(values),
                    stream=stream,
                    source_component=self._component,
                    source_task=self._task_id,
                ),
                direct_task=task_id,
            )
        )

    def drain(self) -> list[Emission]:
        """Return and clear all pending emissions."""
        pending, self._pending = self._pending, []
        return pending

    def __len__(self) -> int:
        return len(self._pending)
