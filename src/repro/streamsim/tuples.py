"""Schema-declared slot tuples: the wire format of the substrate.

Storm models a tuple as a named list of values, and the original simulator
mirrored that literally: every :class:`TupleMessage` carried its own
``dict`` mapping field names to values.  The paper's Figure-2 topology,
however, is a *fixed* set of streams with *fixed* fields — the per-tuple
dict paid, on every emission, for a schema flexibility nobody used (the
classic row-store → slot-layout argument of the columnar literature).

The redesigned wire format declares the layout once per stream:

* a :class:`StreamSchema` is an **interned field layout** — the ordered
  tuple of field names of one named stream, declared where the stream is
  declared (``operators/streams.py`` for the paper topology,
  :meth:`~repro.streamsim.topology.TopologyBuilder.stream` at
  topology-build time).  Schemas subclass :class:`str` (the stream name),
  so subscription keys, accounting labels and ``message.stream == "x"``
  comparisons all keep working; two declarations of the same
  ``(name, fields)`` pair return the same object, so hot paths compare
  schemas by identity.
* a :class:`TupleMessage` is a **slot tuple**: the plain tuple of values in
  schema order, the schema, and two provenance fields (emitting component
  and task).  Field access by name goes through the schema's compiled
  ``index``; hot consumers unpack ``message.values`` positionally.
* :meth:`OutputCollector.emit` is **positional** — ``emit(schema, *values)``
  — which kills the per-emission ``dict(values)`` copy of the old API.
* emissions coalesce into per-stream :class:`EmissionBatch` lists (one
  batch per run of same-stream emissions of one component invocation), the
  unit the cluster routes, accounts, delivers (``execute_batch``) and the
  process executor ships over IPC.

Messages of one batch share the schema, the emission mode (grouped vs
direct) and the value of the ``timestamp`` slot, so the cluster can advance
the simulated clock once per batch without changing tick timing.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Name of the default output stream of every component (kept for topology
#: subscriptions that predate declared schemas).
DEFAULT_STREAM = "default"


class StreamSchema(str):
    """Interned field layout of one named stream.

    The schema *is* the stream name (a :class:`str` subclass) plus the
    ordered field tuple, the compiled name → slot ``index`` and the
    pre-resolved ``timestamp_slot`` the cluster's clock reads.  Instances
    are interned by ``(name, fields)``: declaring the same layout twice —
    in an operator module, at topology-build time, or while unpickling in
    a worker process — returns the same object, which is what lets every
    hot path compare schemas with ``is``.
    """

    _interned: dict[tuple[str, tuple[str, ...]], "StreamSchema"] = {}

    fields: tuple[str, ...]
    index: dict[str, int]
    #: Slot of the ``timestamp`` field (-1 when the stream carries none).
    timestamp_slot: int

    def __new__(cls, name: str, fields: tuple[str, ...] = ()) -> "StreamSchema":
        key = (str(name), tuple(fields))
        interned = cls._interned.get(key)
        if interned is not None:
            return interned
        if len(set(key[1])) != len(key[1]):
            raise ValueError(f"stream {name!r} declares duplicate fields: {fields}")
        schema = super().__new__(cls, key[0])
        schema.fields = key[1]
        schema.index = {field: slot for slot, field in enumerate(key[1])}
        schema.timestamp_slot = schema.index.get("timestamp", -1)
        cls._interned[key] = schema
        return schema

    @property
    def name(self) -> str:
        """The stream name (the string value itself)."""
        return str(self)

    def message(
        self,
        source_component: str = "",
        source_task: int = -1,
        **values: Any,
    ) -> "TupleMessage":
        """Build a message by field name (tests and direct injection).

        Fields not passed default to ``None``; unknown names raise.  The
        hot emission path never goes through here — it builds the value
        tuple positionally.
        """
        unknown = set(values) - set(self.fields)
        if unknown:
            raise ValueError(
                f"stream {self.name!r} has no fields {sorted(unknown)}; "
                f"layout is {self.fields}"
            )
        return TupleMessage(
            self,
            tuple(values.get(field) for field in self.fields),
            source_component,
            source_task,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamSchema({str(self)!r}, fields={self.fields!r})"

    def __reduce__(self):
        """Pickle by layout: unpickling re-interns in the target process."""
        return (StreamSchema, (str(self), self.fields))


def stream_schema(name: str, fields: tuple[str, ...] = ()) -> StreamSchema:
    """Declare (or fetch) the interned schema of ``name`` with ``fields``."""
    return StreamSchema(name, fields)


class TupleMessage:
    """A slot tuple flowing between components.

    ``values`` is the plain tuple of field values in schema order;
    ``schema`` carries the layout; ``source_component``/``source_task``
    are the provenance the accounting and direct grouping use.  Name-based
    access (``message["tagset"]``) resolves through the schema's compiled
    index; hot paths unpack ``message.values`` positionally instead.
    """

    __slots__ = ("schema", "values", "source_component", "source_task")

    def __init__(
        self,
        schema: StreamSchema,
        values: tuple[Any, ...] = (),
        source_component: str = "",
        source_task: int = -1,
    ) -> None:
        self.schema = schema
        self.values = values
        self.source_component = source_component
        self.source_task = source_task

    @property
    def stream(self) -> StreamSchema:
        """The stream this tuple travels on (a schema; compares as its name)."""
        return self.schema

    def __getitem__(self, key: str) -> Any:
        return self.values[self.schema.index[key]]

    def get(self, key: str, default: Any = None) -> Any:
        slot = self.schema.index.get(key)
        if slot is None:
            return default
        value = self.values[slot]
        return default if value is None else value

    def __contains__(self, key: str) -> bool:
        return key in self.schema.index

    def __iter__(self) -> Iterator[str]:
        return iter(self.schema.fields)

    def fields(self) -> tuple[str, ...]:
        return self.schema.fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(
            f"{field}={value!r}"
            for field, value in zip(self.schema.fields, self.values)
        )
        return f"<{self.schema.name}({pairs}) from {self.source_component}:{self.source_task}>"

    def __reduce__(self):
        """Compact pickle for the process executor's IPC batches."""
        return (
            TupleMessage,
            (self.schema, self.values, self.source_component, self.source_task),
        )


class EmissionBatch:
    """One run of same-stream emissions of a single component invocation.

    The routing/accounting/delivery/IPC unit of the substrate.  All
    messages share the schema and the ``timestamp`` slot value (the batch
    builder starts a new batch when either changes), so the clock advances
    once per batch.  ``targets`` is ``None`` for grouped emissions or the
    per-message list of global task ids for direct emissions.
    """

    __slots__ = ("schema", "messages", "targets", "timestamp")

    def __init__(
        self,
        schema: StreamSchema,
        messages: list[TupleMessage],
        targets: list[int] | None = None,
        timestamp: Any = None,
    ) -> None:
        self.schema = schema
        self.messages = messages
        self.targets = targets
        self.timestamp = timestamp

    def __len__(self) -> int:
        return len(self.messages)

    def __reduce__(self):
        return (EmissionBatch, (self.schema, self.messages, self.targets, self.timestamp))


#: Shared empty drain result (collectors are drained after every delivery;
#: most drains find nothing).
_NO_BATCHES: tuple[EmissionBatch, ...] = ()


class OutputCollector:
    """Collects the slot tuples a component emits during one invocation.

    Mirrors Storm's ``OutputCollector`` with the positional API:
    components call ``emit(schema, v1, v2, ...)`` (or :meth:`emit_direct`
    for direct grouping) and the cluster drains the collector afterwards
    and routes the resulting :class:`EmissionBatch` lists to subscribers.
    Consecutive emissions on the same stream with the same timestamp (and
    the same grouped/direct mode) coalesce into one batch; ``max_batch``
    caps the batch length (0 = unlimited, 1 = per-message delivery, the
    legacy wire behaviour).
    """

    __slots__ = ("_component", "_task_id", "_batches", "_tail", "max_batch")

    def __init__(self, component: str, task_id: int, max_batch: int = 0) -> None:
        if max_batch < 0:
            raise ValueError("max_batch must be non-negative (0 = unlimited)")
        self._component = component
        self._task_id = task_id
        self._batches: list[EmissionBatch] = []
        self._tail: EmissionBatch | None = None
        self.max_batch = max_batch

    def emit(self, schema: StreamSchema, *values: Any) -> None:
        """Emit one slot tuple on ``schema`` to all subscribers of the stream."""
        fields = schema.fields
        if len(values) != len(fields):
            raise ValueError(
                f"stream {schema.name!r} carries {len(fields)} fields "
                f"{fields}, got {len(values)} values"
            )
        slot = schema.timestamp_slot
        timestamp = values[slot] if slot >= 0 else None
        message = TupleMessage(schema, values, self._component, self._task_id)
        tail = self._tail
        if (
            tail is not None
            and tail.schema is schema
            and tail.targets is None
            and tail.timestamp == timestamp
            and (self.max_batch == 0 or len(tail.messages) < self.max_batch)
        ):
            tail.messages.append(message)
            return
        tail = EmissionBatch(schema, [message], None, timestamp)
        self._batches.append(tail)
        self._tail = tail

    def emit_direct(self, task_id: int, schema: StreamSchema, *values: Any) -> None:
        """Emit one slot tuple directly to one task of a subscribed component."""
        fields = schema.fields
        if len(values) != len(fields):
            raise ValueError(
                f"stream {schema.name!r} carries {len(fields)} fields "
                f"{fields}, got {len(values)} values"
            )
        slot = schema.timestamp_slot
        timestamp = values[slot] if slot >= 0 else None
        message = TupleMessage(schema, values, self._component, self._task_id)
        tail = self._tail
        if (
            tail is not None
            and tail.schema is schema
            and tail.targets is not None
            and tail.timestamp == timestamp
            and (self.max_batch == 0 or len(tail.messages) < self.max_batch)
        ):
            tail.messages.append(message)
            tail.targets.append(task_id)
            return
        tail = EmissionBatch(schema, [message], [task_id], timestamp)
        self._batches.append(tail)
        self._tail = tail

    def drain(self) -> list[EmissionBatch] | tuple[EmissionBatch, ...]:
        """Return and clear all pending emission batches."""
        batches = self._batches
        if not batches:
            return _NO_BATCHES
        self._batches = []
        self._tail = None
        return batches

    def __len__(self) -> int:
        """Pending (not yet drained) message count."""
        return sum(len(batch.messages) for batch in self._batches)
