"""Pluggable execution engines for the stream-processing substrate.

The :class:`~repro.streamsim.cluster.Cluster` *deploys* a topology — creates
tasks, builds routing tables, prepares components.  How tuples are then
pushed through the deployed graph is the job of an :class:`Executor`:

* :class:`InlineExecutor` — the original single-process, depth-first loop:
  poll a spout, drain the global FIFO until nothing is in flight, repeat.
  This is the reference engine every other executor must be logically
  equivalent to.
* :class:`ShardedProcessExecutor` — keeps the upstream operators (Spout →
  Parser → Partitioner → Merger → Disseminator in the paper's topology) in
  the driver process and shards a configurable *remote layer* of downstream
  components (Calculator × k and the Tracker) across ``multiprocessing``
  workers.
* :class:`AsyncServiceExecutor` — the always-on engine behind
  ``repro.service``: documents arrive over a bounded ingest queue fed by
  other threads (:meth:`AsyncServiceExecutor.submit`) instead of a
  pre-materialised stream, and the run ends only when a drain is requested
  (:meth:`AsyncServiceExecutor.request_drain`).  Execution itself stays
  single-writer and depth-first — the spout pulls from the queue inside the
  reference ``_drive`` loop — so a served run is bit-identical to an inline
  batch run over the same document sequence.

Sharding model
--------------
The remote layer must be a pure *sink layer*: nothing upstream may subscribe
to any of its streams.  That holds for the paper's Figure-2 topology — the
Calculators only feed the Tracker and the Tracker feeds nobody — and it is
what makes process-sharding deterministic:

* Tasks of each remote component are assigned round-robin to worker shards
  (``task_index % workers``); the parallelism-1 Tracker lands on shard 0.
* Every link batch the driver would deliver to a remote task is shipped to
  its shard's input queue instead.  The IPC unit is the slot-tuple batch —
  the same per-edge message list the inline engine hands to
  ``execute_batch`` — and slot tuples pickle as plain value tuples plus an
  interned schema reference, which is what keeps the per-message pickling
  tax low (a notification batch additionally carries a whole
  ``notification_batch_size`` micro-batch in one slot).
* Simulated-clock ticks are broadcast to every shard as control messages on
  the same FIFO queues, so each remote bolt observes exactly the same
  interleaving of *driver-routed* deliveries and ticks as it would inline.
* Remote bolts never route directly; their emissions are buffered in the
  worker and relayed through the driver at end-of-stream flush, in shard
  order, through the normal routing (and accounting) machinery.  This is
  the one semantic difference from inline: a remote bolt consuming another
  remote bolt's stream (the Tracker consuming Calculator coefficients)
  receives those tuples after the stream ends rather than interleaved with
  ticks, so such consumers must be insensitive to delivery time relative
  to ticks — true for the order-insensitive Tracker, and asserted
  end-to-end by the executor-equivalence tests.
* At finalisation each shard first *drains* its bolts in-process: bolts
  exposing ``drain_payload()`` (the Calculators) report their remaining
  counters inside the worker, and the shard ships the resulting
  ``(tagset, jaccard, support)`` triples — small — instead of the counter
  tables that produced them, plus the delta reporting engine's deferred
  coefficients as compact ``(triple, count)`` replays (and drops the
  delta fold state so the bolts pickle back slim).  Only then does the
  shard return its (now-empty) bolt
  instances and its per-shard
  :class:`~repro.streamsim.cluster.MessageAccounting`; the driver merges the
  accounting, re-installs the bolts into the cluster, and exposes the
  drained results via :meth:`Executor.drained_results` so the pipeline can
  replay them into the Tracker in driver task order (identical to the
  inline drain order).  Post-run inspection (``instances_of``, report
  collection) stays executor-agnostic.

Because routing decisions, clock advancement and all driver-side metrics are
computed before a tuple crosses the process boundary, a sharded run reports
the same logical metrics as an inline run (asserted by
``tests/pipeline/test_executor_equivalence.py``).

Operator state that lives in the remote layer must be picklable: worker
startup pickles the component factories and finalisation pickles the bolts
back (minus their collector and with a :class:`StaticContext` instead of the
live cluster context).
"""

from __future__ import annotations

import abc
import multiprocessing
import pickle
import queue as queue_module
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from .components import Bolt, Spout
from .tuples import EmissionBatch, OutputCollector, TupleMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import Cluster, MessageAccounting, TaskInfo

#: Wire protocol of the driver→worker queues.
_MSG = "msg"
_TICK = "tick"
_FLUSH = "flush"
_COLLECT = "collect"
_DRAIN = "drain"
_FINALIZE = "finalize"
_STOP = "stop"
#: Two-phase state migration (live repartitioning): prepare computes the
#: payloads side-effect-free (a failure is reported softly and the worker
#: keeps serving), commit ships them and resets, abort drops them.
_MIGRATE_PREPARE = "migrate_prepare"
_MIGRATE_COMMIT = "migrate_commit"
_MIGRATE_ABORT = "migrate_abort"


class Executor(abc.ABC):
    """Drives a deployed cluster to completion.

    The cluster calls back into its executor at four points: task delivery
    (:meth:`owns` / :meth:`deliver_remote`), clock ticks
    (:meth:`tick_remote`) and end-of-stream flushing (:meth:`flush_remote`).
    The base class implements the no-remote-layer behaviour, so an executor
    that runs everything in the driver only provides :meth:`run`.
    """

    #: Registry name, as used by ``SystemConfig.executor`` and the CLI.
    name: str = "?"

    def attach(self, cluster: "Cluster") -> None:
        """Called once by the cluster before components are prepared."""

    @abc.abstractmethod
    def run(self, cluster: "Cluster", max_spout_calls: int | None = None) -> int:
        """Run until every spout is exhausted; returns productive spout calls."""

    # ------------------------------------------------------------------ #
    # Remote-layer hooks (no-ops without a remote layer)
    # ------------------------------------------------------------------ #
    def owns(self, task_id: int) -> bool:
        """Whether deliveries to ``task_id`` bypass the inline bolt."""
        return False

    def deliver_remote(
        self, task: "TaskInfo", messages: Sequence[TupleMessage]
    ) -> None:
        """Ship one link batch to the remote instance of an owned task."""
        raise NotImplementedError(f"{type(self).__name__} owns no remote tasks")

    def tick_remote(self, simulation_time: float) -> None:
        """Propagate a simulated-clock tick to the remote layer."""

    def flush_remote(self) -> int:
        """Flush the remote layer and relay its buffered emissions.

        Returns the number of emissions released back into the driver (the
        cluster keeps flushing until a full pass releases nothing anywhere).
        """
        return 0

    def drained_results(self) -> dict[int, tuple[list, list, int | None]]:
        """End-of-run results drained *inside* the remote layer, per task.

        Maps the task id of every remote bolt exposing ``drain_payload()``
        (or the legacy ``drain_triples()``/``drain_results()``) to
        ``(triples, replays, tracked_keys)``, where ``triples`` are
        ``(tagset, jaccard, support)`` wire triples, ``replays`` are
        ``(triple, count)`` pairs of coefficients whose in-stream shipping
        the delta reporting engine deferred (re-asserted driver-side via
        ``TrackerBolt.ingest_repeated``; empty for the other engines), and
        ``tracked_keys`` is the sketch estimator's pre-drain tracked-tagset
        count (``None`` for exact-mode bolts).  Executors without a remote
        layer return an empty mapping and the pipeline drains driver-side
        as before.
        """
        return {}

    # ------------------------------------------------------------------ #
    # Live-repartitioning state migration (no-ops without a remote layer)
    # ------------------------------------------------------------------ #
    def migrate_prepare(self, task_ids: Sequence[int]) -> str | None:
        """Phase 1 of a state handoff: compute payloads for the given tasks.

        Side-effect-free on the bolts — a failure here must leave the run
        able to continue under the old partition map.  Returns an error
        description, or ``None`` on success (staged payloads are kept in
        the remote layer until :meth:`migrate_commit` or
        :meth:`migrate_abort`).
        """
        return None

    def migrate_commit(self, timestamp: float) -> int:
        """Phase 2: ship the staged payloads and reset the migrated bolts.

        Relays the resulting emissions through the driver's routing (and
        accounting) machinery; returns the number of migrated triples.
        """
        return 0

    def migrate_abort(self) -> None:
        """Drop any staged migration payloads without touching bolt state."""

    # ------------------------------------------------------------------ #
    # The depth-first driver loop shared by all executors
    # ------------------------------------------------------------------ #
    def _drive(self, cluster: "Cluster", max_spout_calls: int | None = None) -> int:
        """Poll spouts depth-first until exhaustion, then flush.

        This is the substrate's reference execution order: one spout call,
        then drain the global FIFO until no tuple is in flight.  Equivalent
        to a Storm cluster that is never backlogged (the regime the paper's
        experiments operate in).
        """
        spout_tasks = [
            task
            for spec in cluster.topology.spouts()
            for task in cluster.tasks_of(spec.name)
        ]
        active = {task.task_id: True for task in spout_tasks}
        productive_calls = 0
        calls = 0
        while any(active.values()):
            for task in spout_tasks:
                if not active[task.task_id]:
                    continue
                if max_spout_calls is not None and calls >= max_spout_calls:
                    active = {task_id: False for task_id in active}
                    break
                spout = task.instance
                assert isinstance(spout, Spout)
                produced = spout.next_tuple()
                calls += 1
                if produced:
                    productive_calls += 1
                else:
                    active[task.task_id] = False
                cluster._route_emissions(task)
                cluster._drain_queue()
        cluster._drain_queue()
        cluster._flush_bolts()
        return productive_calls


class InlineExecutor(Executor):
    """The original engine: everything in one process, depth-first."""

    name = "inline"

    def run(self, cluster: "Cluster", max_spout_calls: int | None = None) -> int:
        return self._drive(cluster, max_spout_calls=max_spout_calls)


# --------------------------------------------------------------------- #
# Sharded multiprocess execution
# --------------------------------------------------------------------- #
class StaticContext:
    """Picklable snapshot of the cluster context shipped to workers.

    Remote bolts are prepared inside the worker process, where the live
    :class:`~repro.streamsim.cluster.ClusterContext` (which holds the whole
    cluster) is unavailable.  This snapshot answers the same read-only
    questions from plain dicts; ``current_time`` tracks the driver clock via
    the broadcast tick messages.
    """

    def __init__(
        self,
        task_ids_by_component: dict[str, list[int]],
        components_by_task: dict[int, str],
    ) -> None:
        self._task_ids = task_ids_by_component
        self._components = components_by_task
        self.current_time = 0.0

    def task_ids(self, component: str) -> list[int]:
        if component not in self._task_ids:
            raise KeyError(f"unknown component {component!r}")
        return list(self._task_ids[component])

    def parallelism(self, component: str) -> int:
        return len(self.task_ids(component))

    def component_of(self, task_id: int) -> str:
        return self._components[task_id]


@dataclass
class WorkerSpec:
    """Everything one shard worker needs to build its slice of the layer."""

    shard_index: int
    #: ``(task_id, task_index, component)`` of every task this shard owns.
    tasks: list[tuple[int, int, str]]
    #: Picklable component factories, keyed by component name.
    factories: dict[str, Callable[[], Any]]
    context: StaticContext


@dataclass
class ShardResult:
    """Final state one shard returns to the driver at finalisation."""

    shard_index: int
    accounting: "MessageAccounting"
    #: The shard's bolt instances keyed by global task id (collector
    #: stripped; the driver re-attaches its own).
    bolts: dict[int, Bolt]


def _shard_worker(spec: WorkerSpec, inbox: Any, outbox: Any) -> None:
    """Worker-process main loop: build the shard's bolts, then serve requests.

    Requests arrive on ``inbox`` in driver order — link-batch deliveries,
    clock ticks, flush passes, emission collections — and the worker applies
    them to its bolts exactly as the inline engine would, buffering every
    emission batch the bolts produce until the driver asks for it.
    """
    from .cluster import MessageAccounting

    try:
        bolts: dict[int, Bolt] = {}
        components: dict[int, str] = {}
        emissions: list[tuple[int, EmissionBatch]] = []
        staged_migration: dict[int, Any] | None = None
        accounting = MessageAccounting()

        def drain(task_id: int) -> None:
            collector = bolts[task_id].collector
            assert collector is not None
            for batch in collector.drain():
                emissions.append((task_id, batch))

        for task_id, task_index, component in spec.tasks:
            bolt = spec.factories[component]()
            if not isinstance(bolt, Bolt):
                raise TypeError(f"remote component {component!r} is not a bolt")
            bolt.prepare(
                component_name=component,
                task_index=task_index,
                task_id=task_id,
                collector=OutputCollector(component, task_id),
                context=spec.context,
            )
            bolts[task_id] = bolt
            components[task_id] = component
            drain(task_id)

        while True:
            request = inbox.get()
            kind = request[0]
            if kind == _MSG:
                _, task_id, messages = request
                accounting.record_batch(
                    messages[0].source_component,
                    components[task_id],
                    task_id,
                    len(messages),
                )
                bolts[task_id].execute_batch(messages)
                drain(task_id)
            elif kind == _TICK:
                spec.context.current_time = request[1]
                for task_id, bolt in bolts.items():
                    bolt.tick(request[1])
                    drain(task_id)
            elif kind == _FLUSH:
                for task_id, bolt in bolts.items():
                    bolt.flush()
                    drain(task_id)
            elif kind == _COLLECT:
                outbox.put(("emissions", spec.shard_index, emissions))
                emissions = []
            elif kind == _MIGRATE_PREPARE:
                # Phase 1 of a live-repartitioning handoff.  Payloads are
                # computed side-effect-free and staged locally; a failure is
                # reported *softly* (the worker keeps serving) so the driver
                # can abort the handoff and resume under the old map.
                _, task_ids = request
                staged: dict[int, Any] = {}
                try:
                    for task_id in task_ids:
                        staged[task_id] = bolts[task_id].prepare_migration()  # type: ignore[attr-defined]
                except Exception:
                    staged_migration = None
                    outbox.put(
                        ("migrated", spec.shard_index,
                         {"ok": False, "error": traceback.format_exc()})
                    )
                else:
                    staged_migration = staged
                    outbox.put(("migrated", spec.shard_index, {"ok": True}))
            elif kind == _MIGRATE_COMMIT:
                # Phase 2: emit the staged payloads and reset the bolts, in
                # task-id order (matching the inline coordinator).  The
                # whole emission buffer ships back with the reply — the
                # commit emissions plus any earlier in-stream report batches
                # — and the driver routes it exactly like a _COLLECT relay.
                _, timestamp = request
                migrated = 0
                for task_id in sorted(staged_migration or {}):
                    assert staged_migration is not None
                    migrated += bolts[task_id].commit_migration(  # type: ignore[attr-defined]
                        staged_migration[task_id], timestamp
                    )
                    drain(task_id)
                staged_migration = None
                outbox.put(
                    ("migrated", spec.shard_index,
                     {"ok": True, "migrated": migrated, "emissions": emissions})
                )
                emissions = []
            elif kind == _MIGRATE_ABORT:
                staged_migration = None
            elif kind == _DRAIN:
                # End-of-run drain runs *inside* the worker: the shard ships
                # final results (small triple lists) instead of the counter
                # tables that produced them, and the tables are emptied
                # before the bolts themselves are pickled back at
                # finalisation.  Mode-specific state that draining resets
                # (the sketch estimator's tracked-key count) is sampled
                # first and shipped alongside.  Delta-engine Calculators
                # additionally ship their deferred coefficients compactly
                # as (triple, count) replays — replayed driver-side in
                # driver task order, so the drain stays deterministic —
                # and drop their carried fold state before pickling back.
                #
                # With a chunk size (request[1] > 0) the shard streams the
                # results instead of building one monolithic reply: per
                # task a "drained_begin" header, then bounded
                # "drained_triples"/"drained_replays" slices (each chunk
                # pickles alone, so neither side ever holds a whole-table
                # message), then a final bare "drained" end marker.
                chunk = request[1] if len(request) > 1 else 0
                drained: dict[int, Any] = {}
                for task_id, bolt in bolts.items():
                    estimator = getattr(bolt, "estimator", None)
                    tracked = getattr(estimator, "tracked_tagsets", None)
                    payload = getattr(bolt, "drain_payload", None)
                    if payload is not None:
                        triples, replays = payload()
                    else:
                        drain = getattr(bolt, "drain_triples", None)
                        if drain is not None:
                            triples, replays = drain(), []
                        else:
                            legacy = getattr(bolt, "drain_results", None)
                            if legacy is None:
                                continue
                            triples = [
                                (r.tagset, r.jaccard, r.support)
                                for r in legacy()
                            ]
                            replays = []
                    release = getattr(bolt, "release_delta_state", None)
                    if release is not None:
                        release()
                    if chunk <= 0:
                        drained[task_id] = (triples, replays, tracked)
                        continue
                    outbox.put(
                        ("drained_begin", spec.shard_index, (task_id, tracked))
                    )
                    for start in range(0, len(triples), chunk):
                        outbox.put(
                            ("drained_triples", spec.shard_index,
                             (task_id, triples[start:start + chunk]))
                        )
                    del triples
                    for start in range(0, len(replays), chunk):
                        outbox.put(
                            ("drained_replays", spec.shard_index,
                             (task_id, replays[start:start + chunk]))
                        )
                    del replays
                if chunk <= 0:
                    outbox.put(("drained", spec.shard_index, drained))
                else:
                    outbox.put(("drained", spec.shard_index, None))
            elif kind == _FINALIZE:
                for bolt in bolts.values():
                    bolt.collector = None  # the driver re-attaches its own
                outbox.put(
                    ("result", spec.shard_index,
                     ShardResult(spec.shard_index, accounting, bolts))
                )
                return
            elif kind == _STOP:
                # Abandon-without-result: the driver hit a failure and is
                # tearing the layer down; exit instead of blocking on get().
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown request {kind!r}")
    except BaseException:  # noqa: BLE001 - report any failure to the driver
        outbox.put(("error", spec.shard_index, traceback.format_exc()))


class ShardedProcessExecutor(Executor):
    """Runs a downstream sink layer across ``multiprocessing`` workers.

    Parameters
    ----------
    workers:
        Requested shard count; clamped to the widest remote component's
        parallelism (a worker with no tasks would only burn a process).
    remote_components:
        Component names forming the remote layer.  Must be a sink layer: no
        driver-side component may subscribe to their streams (their
        emissions are relayed only at end-of-stream).  Components absent
        from the topology are ignored; with none present the executor
        degrades to the inline loop.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default, i.e.
        ``fork`` on Linux).  All shipped state is picklable, so ``spawn``
        works too at a higher startup cost.
    drain_chunk_size:
        When positive, the end-of-run drain streams each remote bolt's
        results back in IPC messages of at most this many triples (or
        replay pairs) instead of one monolithic per-shard reply, bounding
        the peak pickle size on both sides.  ``0`` (the default) keeps the
        single-message drain.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        remote_components: Sequence[str] = (),
        start_method: str | None = None,
        drain_chunk_size: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if drain_chunk_size < 0:
            raise ValueError("drain_chunk_size must be >= 0")
        if not remote_components:
            raise ValueError(
                "ShardedProcessExecutor needs at least one remote component"
            )
        self.requested_workers = workers
        self.remote_components = tuple(remote_components)
        self._start_method = start_method
        self._drain_chunk_size = drain_chunk_size
        self._cluster: "Cluster | None" = None
        self._owner: dict[int, int] = {}
        self._pending: list[list[tuple]] = []
        self._inboxes: list[Any] = []
        self._outboxes: list[Any] = []
        self._procs: list[Any] = []
        self._started = False
        self._finished = False
        self._drained: dict[int, tuple[list, list, int | None]] = {}
        #: Shard count actually used (set at attach time).
        self.effective_workers = 0

    # ------------------------------------------------------------------ #
    # Cluster-facing hooks
    # ------------------------------------------------------------------ #
    def attach(self, cluster: "Cluster") -> None:
        if self._cluster is not None:
            raise RuntimeError(
                "executor already attached; use one executor per cluster"
            )
        self._cluster = cluster
        layers: dict[str, list["TaskInfo"]] = {}
        for component in self.remote_components:
            try:
                layers[component] = cluster.tasks_of(component)
            except KeyError:
                continue  # optional component not in this topology
        if not layers:
            return  # nothing to shard: behave like the inline engine
        self._check_layer_is_sink(cluster, layers)
        widest = max(len(tasks) for tasks in layers.values())
        n = max(1, min(self.requested_workers, widest))
        self.effective_workers = n
        for tasks in layers.values():
            for task in tasks:
                self._owner[task.task_id] = task.task_index % n
        self._pending = [[] for _ in range(n)]

    def owns(self, task_id: int) -> bool:
        return task_id in self._owner

    def deliver_remote(
        self, task: "TaskInfo", messages: Sequence[TupleMessage]
    ) -> None:
        # One queue item per link batch: the IPC unit is the same slot-tuple
        # batch the inline engine would hand to execute_batch.
        self._send(self._owner[task.task_id], (_MSG, task.task_id, messages))

    def tick_remote(self, simulation_time: float) -> None:
        for shard in range(self.effective_workers):
            self._send(shard, (_TICK, simulation_time))

    def flush_remote(self) -> int:
        if not self._started:
            return 0
        assert self._cluster is not None
        for inbox in self._inboxes:
            inbox.put((_FLUSH,))
            inbox.put((_COLLECT,))
        released = 0
        for shard in range(self.effective_workers):
            for task_id, batch in self._receive(shard, "emissions"):
                producer = self._cluster.task(task_id).component
                self._cluster._route_batch(producer, batch)
                released += len(batch.messages)
        return released

    # ------------------------------------------------------------------ #
    # Live-repartitioning state migration
    # ------------------------------------------------------------------ #
    def migrate_prepare(self, task_ids: Sequence[int]) -> str | None:
        if not self._started:
            return None
        by_shard: dict[int, list[int]] = {}
        for task_id in task_ids:
            by_shard.setdefault(self._owner[task_id], []).append(task_id)
        shards = sorted(by_shard)
        for shard in shards:
            self._inboxes[shard].put((_MIGRATE_PREPARE, by_shard[shard]))
        # Every asked shard replies exactly once; collect them all (even
        # after a failure) so the reply streams stay aligned.  A worker that
        # *dies* here (rather than raising) surfaces as the usual
        # RuntimeError from _receive — there is no old state to resume.
        error: str | None = None
        for shard in shards:
            reply = self._receive(shard, "migrated")
            if not reply["ok"] and error is None:
                error = f"shard worker {shard}: {reply['error']}"
        return error

    def migrate_commit(self, timestamp: float) -> int:
        if not self._started:
            return 0
        assert self._cluster is not None
        for inbox in self._inboxes:
            inbox.put((_MIGRATE_COMMIT, timestamp))
        migrated = 0
        for shard in range(self.effective_workers):
            reply = self._receive(shard, "migrated")
            migrated += reply["migrated"]
            # Relay the shard's buffered emissions (the migration payloads
            # plus any earlier in-stream report batches) through the normal
            # routing and accounting machinery, exactly like flush_remote.
            for task_id, batch in reply["emissions"]:
                producer = self._cluster.task(task_id).component
                self._cluster._route_batch(producer, batch)
        return migrated

    def migrate_abort(self) -> None:
        if not self._started:
            return
        for inbox in self._inboxes:
            inbox.put((_MIGRATE_ABORT,))

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, cluster: "Cluster", max_spout_calls: int | None = None) -> int:
        if cluster is not self._cluster:
            raise RuntimeError("executor is not attached to this cluster")
        if not self._owner:
            return self._drive(cluster, max_spout_calls=max_spout_calls)
        if self._finished:
            # A second run would rebuild the workers from their factories
            # and silently zero the remote state merged back by the first
            # run; budget-sliced multi-run execution needs the inline engine.
            raise RuntimeError(
                "ShardedProcessExecutor runs a cluster once; use the inline "
                "executor for resumed/budget-sliced runs"
            )
        self._finished = True
        self._start_workers(cluster)
        try:
            productive = self._drive(cluster, max_spout_calls=max_spout_calls)
            self._finalize(cluster)
            return productive
        finally:
            self._shutdown()

    # ------------------------------------------------------------------ #
    # Worker management
    # ------------------------------------------------------------------ #
    def _send(self, shard: int, item: tuple) -> None:
        if self._finished and not self._started:
            # Post-run injections would buffer into _pending forever (the
            # workers are gone); fail loudly instead of dropping silently.
            raise RuntimeError(
                "remote layer is shut down (the process executor already "
                "ran); use the inline executor for post-run injection"
            )
        # Deliveries can happen before run() (prepare-time emissions); they
        # are buffered and replayed, in order, once the workers exist.
        if self._started:
            self._inboxes[shard].put(item)
        else:
            self._pending[shard].append(item)

    def _start_workers(self, cluster: "Cluster") -> None:
        ctx = multiprocessing.get_context(self._start_method)
        context = StaticContext(
            task_ids_by_component={
                name: [task.task_id for task in cluster.tasks_of(name)]
                for name in cluster.topology.components
            },
            components_by_task={
                task.task_id: task.component for task in cluster._tasks
            },
        )
        shard_tasks: list[list[tuple[int, int, str]]] = [
            [] for _ in range(self.effective_workers)
        ]
        shard_components: list[set[str]] = [set() for _ in range(self.effective_workers)]
        for task_id, shard in sorted(self._owner.items()):
            task = cluster.task(task_id)
            shard_tasks[shard].append((task.task_id, task.task_index, task.component))
            shard_components[shard].add(task.component)
        for shard in range(self.effective_workers):
            spec = WorkerSpec(
                shard_index=shard,
                tasks=shard_tasks[shard],
                factories={
                    name: cluster.topology.components[name].factory
                    for name in shard_components[shard]
                },
                context=context,
            )
            try:
                pickle.dumps(spec)
            except Exception as exc:
                raise RuntimeError(
                    "the process executor requires picklable factories and "
                    f"state for the remote layer ({sorted(shard_components[shard])}): "
                    f"{exc}"
                ) from exc
            inbox = ctx.Queue()
            outbox = ctx.Queue()
            proc = ctx.Process(
                target=_shard_worker,
                args=(spec, inbox, outbox),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            self._inboxes.append(inbox)
            self._outboxes.append(outbox)
            self._procs.append(proc)
        self._started = True
        for shard, items in enumerate(self._pending):
            for item in items:
                self._inboxes[shard].put(item)
        self._pending = [[] for _ in range(self.effective_workers)]

    def _receive(self, shard: int, expected: str) -> Any:
        _kind, payload = self._receive_any(shard, (expected,))
        return payload

    def _receive_any(
        self, shard: int, kinds: Sequence[str]
    ) -> tuple[str, Any]:
        """Next reply from ``shard`` whose kind is one of ``kinds``.

        Polls with a liveness check so a dead worker surfaces as an error
        instead of a hang; worker-reported failures raise immediately.
        Returns ``(kind, payload)`` — callers expecting a single kind use
        the :meth:`_receive` wrapper.
        """
        outbox = self._outboxes[shard]
        while True:
            try:
                reply = outbox.get(timeout=1.0)
            except queue_module.Empty:
                if not self._procs[shard].is_alive():
                    raise RuntimeError(
                        f"shard worker {shard} died without reporting a result"
                    ) from None
                continue
            kind = reply[0]
            if kind == "error":
                raise RuntimeError(f"shard worker {shard} failed:\n{reply[2]}")
            if kind not in kinds:  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"expected one of {tuple(kinds)!r} from shard {shard}, "
                    f"got {kind!r}"
                )
            return kind, reply[2]

    def drained_results(self) -> dict[int, tuple[list, list, int | None]]:
        return self._drained

    def _finalize(self, cluster: "Cluster") -> None:
        """Deterministically merge per-shard state back into the cluster.

        The remote layer is drained worker-side first — each shard ships
        its bolts' final results (small) rather than the counter tables
        that produced them — and only then are the (now-empty) bolts and
        the accounting pickled back.  Shards are processed in shard order,
        so neither step depends on worker scheduling; the pipeline replays
        the drained results in driver task order.
        """
        for inbox in self._inboxes:
            inbox.put((_DRAIN, self._drain_chunk_size))
        if self._drain_chunk_size <= 0:
            for shard in range(self.effective_workers):
                self._drained.update(self._receive(shard, "drained"))
        else:
            # Chunked drain: reassemble each task's streamed slices.  The
            # per-shard stream is ordered (one FIFO queue per worker), so a
            # "drained_begin" header always precedes its task's chunks and
            # the bare "drained" end marker closes the shard.
            kinds = (
                "drained", "drained_begin",
                "drained_triples", "drained_replays",
            )
            for shard in range(self.effective_workers):
                while True:
                    kind, payload = self._receive_any(shard, kinds)
                    if kind == "drained":
                        break
                    task_id, part = payload
                    if kind == "drained_begin":
                        self._drained[task_id] = ([], [], part)
                    elif kind == "drained_triples":
                        self._drained[task_id][0].extend(part)
                    else:
                        self._drained[task_id][1].extend(part)
        for inbox in self._inboxes:
            inbox.put((_FINALIZE,))
        for shard in range(self.effective_workers):
            result: ShardResult = self._receive(shard, "result")
            cluster.accounting.merge(result.accounting)
            for task_id in sorted(result.bolts):
                bolt = result.bolts[task_id]
                task = cluster.task(task_id)
                bolt.collector = task.collector
                bolt.context = cluster.context
                task.instance = bolt

    def _shutdown(self) -> None:
        # On failure paths workers are still blocked in inbox.get(); a stop
        # sentinel lets them exit immediately instead of burning the join
        # timeout (finished workers have already left — the put is harmless).
        for inbox in self._inboxes:
            try:
                inbox.put((_STOP,))
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - only on worker hangs
                proc.terminate()
                proc.join(timeout=1.0)
        for channel in (*self._inboxes, *self._outboxes):
            channel.close()
            channel.cancel_join_thread()
        self._inboxes = []
        self._outboxes = []
        self._procs = []
        self._started = False

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _check_layer_is_sink(
        self, cluster: "Cluster", layers: dict[str, list["TaskInfo"]]
    ) -> None:
        """The remote layer's streams may only feed the remote layer itself."""
        remote = set(layers)
        for subscription in cluster.topology.subscriptions:
            if subscription.producer in remote and subscription.consumer not in remote:
                raise ValueError(
                    f"remote component {subscription.producer!r} feeds "
                    f"driver-side component {subscription.consumer!r}; the "
                    "sharded layer must be a sink layer (its emissions are "
                    "only relayed at end of stream)"
                )


# --------------------------------------------------------------------- #
# Always-on service execution
# --------------------------------------------------------------------- #
class IngestBackpressure(RuntimeError):
    """Raised by a non-blocking submit when the bounded ingest queue is full."""


class IngestClosed(RuntimeError):
    """Raised by submit once a drain has been requested (no more ingest)."""


#: Default bound of the service executor's batch queue (mirrored by
#: ``SystemConfig.service_queue_limit``).
DEFAULT_SERVICE_QUEUE_LIMIT = 8

#: Sentinel distinguishing "batch exhausted" from a ``None`` document.
_EXHAUSTED = object()


class AsyncServiceExecutor(Executor):
    """Single-writer engine fed by a bounded cross-thread ingest queue.

    The executor owns the hand-off point between the serving surface
    (``repro.service`` daemon threads, or any caller) and the cluster:

    * **Ingest** — :meth:`submit` appends one *batch* (a list of documents)
      to a bounded deque; when ``queue_limit`` batches are already pending
      a non-blocking submit raises :class:`IngestBackpressure` and a
      blocking one waits for the writer to catch up.  After
      :meth:`request_drain` every submit raises :class:`IngestClosed`.
    * **Execution** — :meth:`run` is the reference depth-first ``_drive``
      loop, unchanged: the topology's :class:`~repro.operators.spouts.ServiceSpout`
      calls back into :meth:`next_document`, which feeds queued documents
      one at a time and blocks while the queue is idle.  Exactly one thread
      (whichever called ``cluster.run()``) ever touches cluster state — the
      single-writer discipline that makes served runs bit-identical to
      batch runs.
    * **Quiescent points** — between two documents the in-flight FIFO is
      empty (the drive loop drains after every spout call), so the moment
      ``next_document`` finds the current batch exhausted is a clean
      snapshot boundary: ``on_quiescent`` fires there, on the writer
      thread, with all state consistent.  The daemon publishes its
      round-consistent Tracker snapshots from this hook.

    The run ends when a drain has been requested *and* the queue is empty:
    the spout reports exhaustion and ``_drive`` finishes with the normal
    end-of-stream flush, so the final :class:`RunReport` is collected
    exactly like a batch run's.
    """

    name = "service"

    def __init__(self, queue_limit: int = DEFAULT_SERVICE_QUEUE_LIMIT) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._batches: deque[list] = deque()
        self._current: Iterator | None = None
        self._draining = False
        self._running = False
        self._cluster: "Cluster | None" = None
        #: Writer-thread hook fired at every quiescent batch boundary
        #: (current batch fully cascaded, next one not yet started).
        self.on_quiescent: Callable[[], None] | None = None
        self.batches_accepted = 0
        self.documents_accepted = 0

    # ------------------------------------------------------------------ #
    # Ingest side (any thread)
    # ------------------------------------------------------------------ #
    def submit(
        self,
        documents: Sequence | Iterator,
        block: bool = True,
        timeout: float | None = None,
    ) -> int:
        """Queue one document batch for the writer; returns its size.

        Raises :class:`IngestClosed` once a drain has been requested and
        :class:`IngestBackpressure` when ``block`` is false (or ``timeout``
        expires) with ``queue_limit`` batches already pending.
        """
        batch = list(documents)
        with self._not_full:
            while True:
                if self._draining:
                    raise IngestClosed(
                        "service executor is draining; no further ingest"
                    )
                if len(self._batches) < self.queue_limit:
                    break
                if not block:
                    raise IngestBackpressure(
                        f"ingest queue is full ({self.queue_limit} batches pending)"
                    )
                if not self._not_full.wait(timeout=timeout):
                    raise IngestBackpressure(
                        f"ingest queue stayed full for {timeout}s "
                        f"({self.queue_limit} batches pending)"
                    )
            self._batches.append(batch)
            self.batches_accepted += 1
            self.documents_accepted += len(batch)
            self._not_empty.notify()
        return len(batch)

    def request_drain(self) -> None:
        """Close ingest; the run ends once the queued batches are consumed.

        Idempotent and callable from any thread.
        """
        with self._lock:
            self._draining = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def pending_batches(self) -> int:
        """Batches queued but not yet started by the writer."""
        with self._lock:
            return len(self._batches)

    # ------------------------------------------------------------------ #
    # Writer side (the thread running ``cluster.run()`` only)
    # ------------------------------------------------------------------ #
    def next_document(self):
        """Next queued document, or ``None`` at end of stream (drained).

        Called by the :class:`~repro.operators.spouts.ServiceSpout` from
        inside the drive loop.  Blocks while the queue is idle; fires
        ``on_quiescent`` at every batch boundary before touching the next
        batch.
        """
        while True:
            if self._current is not None:
                document = next(self._current, _EXHAUSTED)
                if document is not _EXHAUSTED:
                    return document
                # The previous document has fully cascaded (the drive loop
                # drains the FIFO between spout calls): a clean boundary.
                self._current = None
                if self.on_quiescent is not None:
                    self.on_quiescent()
            with self._not_empty:
                while not self._batches and not self._draining:
                    self._not_empty.wait()
                if not self._batches:
                    return None  # draining and empty: end of stream
                self._current = iter(self._batches.popleft())
                self._not_full.notify()

    def attach(self, cluster: "Cluster") -> None:
        if self._cluster is not None:
            raise RuntimeError(
                "executor already attached; use one executor per cluster"
            )
        self._cluster = cluster

    def run(self, cluster: "Cluster", max_spout_calls: int | None = None) -> int:
        if cluster is not self._cluster:
            raise RuntimeError("executor is not attached to this cluster")
        with self._lock:
            if self._running:
                raise RuntimeError(
                    "service executor is already running; exactly one thread "
                    "may drive the cluster"
                )
            self._running = True
        try:
            return self._drive(cluster, max_spout_calls=max_spout_calls)
        finally:
            with self._lock:
                self._running = False


#: Executor registry used by ``make_executor`` (and mirrored by the CLI).
EXECUTOR_NAMES = (
    InlineExecutor.name,
    ShardedProcessExecutor.name,
    AsyncServiceExecutor.name,
)


def make_executor(
    name: str,
    workers: int = 2,
    remote_components: Sequence[str] = (),
    start_method: str | None = None,
    queue_limit: int = DEFAULT_SERVICE_QUEUE_LIMIT,
    drain_chunk_size: int = 0,
) -> Executor:
    """Build an executor by registry name (``"inline"``, ``"process"`` or
    ``"service"``)."""
    if name == InlineExecutor.name:
        return InlineExecutor()
    if name == ShardedProcessExecutor.name:
        return ShardedProcessExecutor(
            workers=workers,
            remote_components=remote_components,
            start_method=start_method,
            drain_chunk_size=drain_chunk_size,
        )
    if name == AsyncServiceExecutor.name:
        return AsyncServiceExecutor(queue_limit=queue_limit)
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )
