"""A single-process, discrete-event stand-in for the Storm platform.

The paper implements its operators on Apache Storm (Section 6).  This
package reproduces the Storm programming model — spouts, bolts, stream
groupings, multi-instance components, a topology builder and a cluster that
executes the topology — as a deterministic in-process simulator with
per-link message accounting, which is what the paper's metrics are computed
from.
"""

from .cluster import Cluster, ClusterContext, MessageAccounting, iter_bolts, run_topology
from .components import Bolt, Component, Spout
from .groupings import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    Grouping,
    LocalGrouping,
    ShuffleGrouping,
)
from .topology import ComponentSpec, Subscription, Topology, TopologyBuilder
from .tuples import DEFAULT_STREAM, Emission, OutputCollector, TupleMessage

__all__ = [
    "AllGrouping",
    "Bolt",
    "Cluster",
    "ClusterContext",
    "Component",
    "ComponentSpec",
    "DEFAULT_STREAM",
    "DirectGrouping",
    "Emission",
    "FieldsGrouping",
    "Grouping",
    "LocalGrouping",
    "MessageAccounting",
    "OutputCollector",
    "ShuffleGrouping",
    "Spout",
    "Subscription",
    "Topology",
    "TopologyBuilder",
    "TupleMessage",
    "iter_bolts",
    "run_topology",
]
