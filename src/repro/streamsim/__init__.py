"""A discrete-event stand-in for the Storm platform with pluggable engines.

The paper implements its operators on Apache Storm (Section 6).  This
package reproduces the Storm programming model — spouts, bolts, stream
groupings, multi-instance components, a topology builder and a cluster that
executes the topology — as a deterministic simulator with per-link message
accounting, which is what the paper's metrics are computed from.

The wire format is schema-declared (``tuples.py``): every stream's field
layout is interned once as a ``StreamSchema``, tuples are slot tuples (a
plain value tuple plus the schema and integer provenance), emission is
positional (``emit(schema, *values)``) and routing/delivery/IPC all operate
on per-link ``EmissionBatch`` lists — see docs/ARCHITECTURE.md "Wire
format".

Execution is pluggable (``executors.py``): the default ``InlineExecutor``
runs everything depth-first in one process, while the
``ShardedProcessExecutor`` shards a sink layer of components (the
Calculator/Tracker layer in the paper's topology) across ``multiprocessing``
workers without changing any logical metric.
"""

from .cluster import Cluster, ClusterContext, MessageAccounting, iter_bolts, run_topology
from .components import Bolt, Component, Spout
from .executors import (
    EXECUTOR_NAMES,
    AsyncServiceExecutor,
    Executor,
    IngestBackpressure,
    IngestClosed,
    InlineExecutor,
    ShardedProcessExecutor,
    make_executor,
)
from .groupings import (
    AllGrouping,
    DirectGrouping,
    FieldsGrouping,
    Grouping,
    LocalGrouping,
    ShuffleGrouping,
)
from .topology import ComponentSpec, Subscription, Topology, TopologyBuilder
from .tuples import (
    DEFAULT_STREAM,
    EmissionBatch,
    OutputCollector,
    StreamSchema,
    TupleMessage,
    stream_schema,
)

__all__ = [
    "AllGrouping",
    "AsyncServiceExecutor",
    "Bolt",
    "Cluster",
    "ClusterContext",
    "Component",
    "ComponentSpec",
    "DEFAULT_STREAM",
    "DirectGrouping",
    "EXECUTOR_NAMES",
    "EmissionBatch",
    "Executor",
    "FieldsGrouping",
    "Grouping",
    "IngestBackpressure",
    "IngestClosed",
    "InlineExecutor",
    "LocalGrouping",
    "MessageAccounting",
    "OutputCollector",
    "ShardedProcessExecutor",
    "ShuffleGrouping",
    "Spout",
    "StreamSchema",
    "Subscription",
    "Topology",
    "TopologyBuilder",
    "TupleMessage",
    "iter_bolts",
    "make_executor",
    "run_topology",
    "stream_schema",
]
