"""Spouts and bolts: the user-implemented operators of the substrate.

Application code subclasses :class:`Spout` (stream sources) and
:class:`Bolt` (stream processors), exactly like in Storm.  Each *task*
(parallel instance) of a component gets its own object, created by the
factory registered with the topology builder, so per-task state needs no
locking even though the simulator is single-threaded.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from .tuples import OutputCollector, TupleMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import ClusterContext


class Component(abc.ABC):
    """Shared behaviour of spouts and bolts."""

    def __init__(self) -> None:
        self.component_name: str = ""
        self.task_index: int = -1
        self.task_id: int = -1
        self.collector: OutputCollector | None = None
        self.context: "ClusterContext | None" = None

    def prepare(
        self,
        component_name: str,
        task_index: int,
        task_id: int,
        collector: OutputCollector,
        context: "ClusterContext",
    ) -> None:
        """Called once by the cluster before any tuple is processed."""
        self.component_name = component_name
        self.task_index = task_index
        self.task_id = task_id
        self.collector = collector
        self.context = context
        self.on_prepare()

    def on_prepare(self) -> None:
        """Hook for subclasses; runs after the component is wired up."""

    def emit(self, values: dict, stream: str = "default") -> None:
        """Convenience wrapper around the collector."""
        assert self.collector is not None, "component used before prepare()"
        self.collector.emit(values, stream=stream)

    def emit_direct(self, task_id: int, values: dict, stream: str = "default") -> None:
        assert self.collector is not None, "component used before prepare()"
        self.collector.emit_direct(task_id, values, stream=stream)


class Spout(Component):
    """A source of tuples."""

    @abc.abstractmethod
    def next_tuple(self) -> bool:
        """Emit zero or more tuples; return False when the source is exhausted.

        The cluster keeps polling the spout while it returns True (and the
        run's document budget is not exceeded).  A file-backed spout returns
        False at end of file, which ends the simulation once all in-flight
        tuples are processed.
        """


class Bolt(Component):
    """A tuple processor."""

    @abc.abstractmethod
    def execute(self, message: TupleMessage) -> None:
        """Process one incoming tuple, optionally emitting new ones."""

    def tick(self, simulation_time: float) -> None:
        """Periodic callback driven by the simulated clock.

        Operators that act on a timer (e.g. Calculators reporting their
        Jaccard coefficients every ``y`` time units) override this.
        """

    def flush(self) -> None:
        """End-of-stream callback: emit any buffered output.

        The cluster calls this on every bolt after all spouts are exhausted
        and the queue has drained, then routes whatever was emitted —
        repeating the pass until nothing new is released, so chained
        buffering bolts drain transitively.  Operators that buffer tuples
        (e.g. the Disseminator's batched notifications) override this so no
        data is lost when the simulated clock stops with the stream; the
        override must tolerate being called more than once.
        """
