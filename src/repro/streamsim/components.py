"""Spouts and bolts: the user-implemented operators of the substrate.

Application code subclasses :class:`Spout` (stream sources) and
:class:`Bolt` (stream processors), exactly like in Storm.  Each *task*
(parallel instance) of a component gets its own object, created by the
factory registered with the topology builder, so per-task state needs no
locking even though the simulator is single-threaded.

Operators speak the slot-tuple wire API: they emit **positionally** against
a declared :class:`~repro.streamsim.tuples.StreamSchema`
(``self.emit(TAGSETS, doc_id, timestamp, tagset)``) and receive
:class:`~repro.streamsim.tuples.TupleMessage` slot tuples, unpacking
``message.values`` in schema order.  Deliveries arrive in per-link batches:
:meth:`Bolt.execute_batch` is the delivery entry point, and its default
simply loops :meth:`Bolt.execute` — override it when processing a whole
batch at once is cheaper (the Calculator does).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Sequence

from .tuples import OutputCollector, StreamSchema, TupleMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import ClusterContext


class Component(abc.ABC):
    """Shared behaviour of spouts and bolts."""

    def __init__(self) -> None:
        self.component_name: str = ""
        self.task_index: int = -1
        self.task_id: int = -1
        self.collector: OutputCollector | None = None
        self.context: "ClusterContext | None" = None

    def prepare(
        self,
        component_name: str,
        task_index: int,
        task_id: int,
        collector: OutputCollector,
        context: "ClusterContext",
    ) -> None:
        """Called once by the cluster before any tuple is processed."""
        self.component_name = component_name
        self.task_index = task_index
        self.task_id = task_id
        self.collector = collector
        self.context = context
        self.on_prepare()

    def on_prepare(self) -> None:
        """Hook for subclasses; runs after the component is wired up."""

    def emit(self, schema: StreamSchema, *values: Any) -> None:
        """Emit one slot tuple on ``schema`` (positional, in field order)."""
        assert self.collector is not None, "component used before prepare()"
        self.collector.emit(schema, *values)

    def emit_direct(self, task_id: int, schema: StreamSchema, *values: Any) -> None:
        """Emit one slot tuple directly to the task with global id ``task_id``."""
        assert self.collector is not None, "component used before prepare()"
        self.collector.emit_direct(task_id, schema, *values)


class Spout(Component):
    """A source of tuples."""

    @abc.abstractmethod
    def next_tuple(self) -> bool:
        """Emit zero or more tuples; return False when the source is exhausted.

        The cluster keeps polling the spout while it returns True (and the
        run's document budget is not exceeded).  A file-backed spout returns
        False at end of file, which ends the simulation once all in-flight
        tuples are processed.
        """


class Bolt(Component):
    """A tuple processor."""

    @abc.abstractmethod
    def execute(self, message: TupleMessage) -> None:
        """Process one incoming tuple, optionally emitting new ones."""

    def execute_batch(self, messages: Sequence[TupleMessage]) -> None:
        """Process one delivered link batch (same producer, stream and task).

        The cluster delivers per-edge batches and routes whatever the bolt
        emitted only after the whole batch is processed.  The default loops
        :meth:`execute`; bolts that can amortise per-message dispatch (e.g.
        the Calculator's notification handling) override this.
        """
        execute = self.execute
        for message in messages:
            execute(message)

    def tick(self, simulation_time: float) -> None:
        """Periodic callback driven by the simulated clock.

        Operators that act on a timer (e.g. Calculators reporting their
        Jaccard coefficients every ``y`` time units) override this.
        """

    def flush(self) -> None:
        """End-of-stream callback: emit any buffered output.

        The cluster calls this on every bolt after all spouts are exhausted
        and the queue has drained, then routes whatever was emitted —
        repeating the pass until nothing new is released, so chained
        buffering bolts drain transitively.  Operators that buffer tuples
        (e.g. the Disseminator's batched notifications) override this so no
        data is lost when the simulated clock stops with the stream; the
        override must tolerate being called more than once.
        """
