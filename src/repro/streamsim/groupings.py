"""Stream groupings: how tuples are routed to the tasks of a consumer.

Storm offers several rules for distributing the tuples of a producing
component over the multiple task instances of a consuming bolt
(Section 6.1 of the paper).  The simulator implements the ones the paper's
topology uses — shuffle, fields, all, direct — plus local grouping, which in
a single-process simulation behaves like shuffle.

With the slot-tuple wire format the cluster routes :class:`EmissionBatch`
lists, calling :meth:`Grouping.select_batch` **once per batch** per
subscriber; fields grouping compiles the field names to slot indices per
:class:`~repro.streamsim.tuples.StreamSchema` the first time it sees a
stream, so steady-state routing does no name lookups.  Every grouping
selects exactly the same tasks as the old dict-backed format (pinned by
``tests/streamsim/test_groupings.py`` against recorded fixtures).
"""

from __future__ import annotations

import abc
import random
import zlib
from typing import Sequence

from .tuples import StreamSchema, TupleMessage


def stable_hash(value: object) -> int:
    """Process-independent hash used by fields grouping.

    Python's built-in ``hash`` of strings is salted per process, which would
    make experiment runs non-reproducible; a CRC over the ``repr`` is stable.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class Grouping(abc.ABC):
    """Decides which task indices of the consumer receive a tuple."""

    @abc.abstractmethod
    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        """Task indices (0-based, within the consumer) receiving ``message``."""

    def select_batch(
        self, messages: Sequence[TupleMessage], n_tasks: int
    ) -> list[Sequence[int]]:
        """Per-message task indices for one emission batch.

        The cluster calls this once per routed batch.  The default defers
        to :meth:`select` per message; stateful groupings must consume
        exactly one :meth:`select` step per message so batched and
        per-message routing pick identical tasks.
        """
        select = self.select
        return [select(message, n_tasks) for message in messages]


class ShuffleGrouping(Grouping):
    """Distribute tuples (pseudo-)randomly but evenly over the tasks.

    Uses round-robin with a randomised starting offset, which matches
    Storm's guarantee that each instance receives approximately the same
    number of tuples while remaining deterministic under a fixed seed.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)
        self._counter = self._rng.randrange(1_000_000)

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        if n_tasks <= 0:
            return []
        index = self._counter % n_tasks
        self._counter += 1
        return [index]

    def select_batch(
        self, messages: Sequence[TupleMessage], n_tasks: int
    ) -> list[Sequence[int]]:
        if n_tasks <= 0:
            return [[] for _ in messages]
        counter = self._counter
        selections = [[(counter + offset) % n_tasks] for offset in range(len(messages))]
        self._counter = counter + len(messages)
        return selections


class FieldsGrouping(Grouping):
    """Route by the hash of one or more tuple fields.

    Tuples with equal values in the grouping fields always reach the same
    task — the property the Partitioner relies on to see consistent tagsets.
    Field names are compiled to slot indices per stream schema on first
    contact; a field the schema does not carry hashes as ``None``, exactly
    like the old dict format's ``message.get``.
    """

    #: Bound on the routing memo (distinct values per grouping); the memo is
    #: cleared, not evicted, beyond this — selection stays correct either way.
    _MEMO_LIMIT = 100_000

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("fields grouping needs at least one field")
        self._fields = tuple(fields)
        #: Per-schema compiled slots (``None`` = field absent from layout).
        self._slots: dict[StreamSchema, tuple[int | None, ...]] = {}
        #: Memoised selections of single-field groupings over value types
        #: whose equality implies equal reprs (str, frozenset): trending
        #: tagsets recur thousands of times, and one dict probe replaces the
        #: sorted-repr + CRC walk.  Keyed by (n_tasks, raw value).
        self._memo: dict[tuple[int, object], int] = {}

    @property
    def fields(self) -> tuple[str, ...]:
        """The grouping fields (topology validation reads these)."""
        return self._fields

    def _slots_for(self, schema: StreamSchema) -> tuple[int | None, ...]:
        slots = self._slots.get(schema)
        if slots is None:
            index = schema.index
            slots = tuple(index.get(field) for field in self._fields)
            self._slots[schema] = slots
        return slots

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        if n_tasks <= 0:
            return []
        values = message.values
        slots = self._slots_for(message.schema)
        if len(slots) == 1:
            slot = slots[0]
            raw = values[slot] if slot is not None else None
            # Memoisation is restricted to types where equal values have
            # equal reprs, so the cached index is exactly what the hash
            # walk would recompute.
            if type(raw) is frozenset or type(raw) is str:
                memo_key = (n_tasks, raw)
                index = self._memo.get(memo_key)
                if index is None:
                    index = stable_hash((self._hashable(raw),)) % n_tasks
                    if len(self._memo) >= self._MEMO_LIMIT:
                        self._memo.clear()
                    self._memo[memo_key] = index
                return [index]
            return [stable_hash((self._hashable(raw),)) % n_tasks]
        hashable = self._hashable
        key = tuple(
            hashable(values[slot]) if slot is not None else None for slot in slots
        )
        return [stable_hash(key) % n_tasks]

    @staticmethod
    def _hashable(value: object) -> object:
        if isinstance(value, (list, set, frozenset)):
            return tuple(sorted(map(repr, value)))
        return value


class AllGrouping(Grouping):
    """Broadcast: every task of the consumer receives every tuple."""

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        return list(range(n_tasks))

    def select_batch(
        self, messages: Sequence[TupleMessage], n_tasks: int
    ) -> list[Sequence[int]]:
        everyone = list(range(n_tasks))
        return [everyone] * len(messages)


class DirectGrouping(Grouping):
    """The producer names the receiving task explicitly via ``emit_direct``.

    ``select`` is only consulted when a directly-grouped stream receives a
    non-direct emission, which is a topology bug — fail loudly.
    """

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        raise RuntimeError(
            "direct-grouped streams require emit_direct(); "
            f"got a broadcast emission from {message.source_component!r}"
        )


class LocalGrouping(ShuffleGrouping):
    """Local-or-shuffle grouping; identical to shuffle in a single process."""
