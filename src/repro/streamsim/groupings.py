"""Stream groupings: how tuples are routed to the tasks of a consumer.

Storm offers several rules for distributing the tuples of a producing
component over the multiple task instances of a consuming bolt
(Section 6.1 of the paper).  The simulator implements the ones the paper's
topology uses — shuffle, fields, all, direct — plus local grouping, which in
a single-process simulation behaves like shuffle.
"""

from __future__ import annotations

import abc
import random
import zlib
from typing import Sequence

from .tuples import TupleMessage


def stable_hash(value: object) -> int:
    """Process-independent hash used by fields grouping.

    Python's built-in ``hash`` of strings is salted per process, which would
    make experiment runs non-reproducible; a CRC over the ``repr`` is stable.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class Grouping(abc.ABC):
    """Decides which task indices of the consumer receive a tuple."""

    @abc.abstractmethod
    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        """Task indices (0-based, within the consumer) receiving ``message``."""


class ShuffleGrouping(Grouping):
    """Distribute tuples (pseudo-)randomly but evenly over the tasks.

    Uses round-robin with a randomised starting offset, which matches
    Storm's guarantee that each instance receives approximately the same
    number of tuples while remaining deterministic under a fixed seed.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._rng = random.Random(seed)
        self._counter = self._rng.randrange(1_000_000)

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        if n_tasks <= 0:
            return []
        index = self._counter % n_tasks
        self._counter += 1
        return [index]


class FieldsGrouping(Grouping):
    """Route by the hash of one or more tuple fields.

    Tuples with equal values in the grouping fields always reach the same
    task — the property the Partitioner relies on to see consistent tagsets.
    """

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("fields grouping needs at least one field")
        self._fields = tuple(fields)

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        if n_tasks <= 0:
            return []
        key = tuple(self._hashable(message.get(field)) for field in self._fields)
        return [stable_hash(key) % n_tasks]

    @staticmethod
    def _hashable(value: object) -> object:
        if isinstance(value, (list, set, frozenset)):
            return tuple(sorted(map(repr, value)))
        return value


class AllGrouping(Grouping):
    """Broadcast: every task of the consumer receives every tuple."""

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        return list(range(n_tasks))


class DirectGrouping(Grouping):
    """The producer names the receiving task explicitly via ``emit_direct``.

    ``select`` is only consulted when a directly-grouped stream receives a
    non-direct emission, which is a topology bug — fail loudly.
    """

    def select(self, message: TupleMessage, n_tasks: int) -> Sequence[int]:
        raise RuntimeError(
            "direct-grouped streams require emit_direct(); "
            f"got a broadcast emission from {message.source_component!r}"
        )


class LocalGrouping(ShuffleGrouping):
    """Local-or-shuffle grouping; identical to shuffle in a single process."""
