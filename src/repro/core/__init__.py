"""Core data model, statistics and metrics of the reproduction.

This package holds everything the partitioning algorithms and the stream
pipeline share: documents and tagsets, the union–find structure, the
co-occurrence statistics of a window, Jaccard computation, partitions and
the evaluation metrics (communication, Gini load, Jaccard error).
"""

from .cooccurrence import CooccurrenceStatistics
from .documents import Document, DocumentBatch, documents_from_tagsets, make_tagset
from .jaccard import (
    DEFAULT_SUBSET_CACHE_SIZE,
    REPORTING_ENGINES,
    JaccardCalculator,
    JaccardResult,
    SubsetCounter,
    SubsetTupleCache,
    all_nonempty_subsets,
    exact_jaccard,
    union_size_inclusion_exclusion,
)
from .metrics import (
    CommunicationTracker,
    JaccardErrorReport,
    LoadTracker,
    gini_coefficient,
    jaccard_error,
    load_shares,
    load_variance,
    lorenz_curve,
    max_load_share,
    replication_cost,
)
from .partition import Partition, PartitionAssignment
from .union_find import UnionFind

__all__ = [
    "CooccurrenceStatistics",
    "Document",
    "DocumentBatch",
    "documents_from_tagsets",
    "make_tagset",
    "DEFAULT_SUBSET_CACHE_SIZE",
    "REPORTING_ENGINES",
    "SubsetTupleCache",
    "JaccardCalculator",
    "JaccardResult",
    "SubsetCounter",
    "all_nonempty_subsets",
    "exact_jaccard",
    "union_size_inclusion_exclusion",
    "CommunicationTracker",
    "JaccardErrorReport",
    "LoadTracker",
    "gini_coefficient",
    "jaccard_error",
    "load_shares",
    "load_variance",
    "lorenz_curve",
    "max_load_share",
    "replication_cost",
    "Partition",
    "PartitionAssignment",
    "UnionFind",
]
