"""Tag partitions and the tag-to-calculator assignment.

A *partition* ``pr_i`` is a set of tags assigned to one Calculator node.  A
:class:`PartitionAssignment` is the full output of a partitioning algorithm:
``k`` partitions, possibly overlapping (overlap is replication and causes
communication overhead), together with the inverted index from tags to the
partitions containing them that the Disseminator uses for routing
(Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class PartitionSeed:
    """A serialisable snapshot of an installed assignment plus its quality.

    Captures everything the runtime needs to resume under a known map: the
    tag sets and bookkeeping loads of every partition, and the reference
    quality (average communication, maximum load) the Disseminator compares
    rolling statistics against.  Produced from a recorded
    ``PartitionInstall`` and consumed by ``SystemConfig.initial_partitions``
    — the splice-equivalence suites use it to start a fresh run exactly
    where a live repartition left off.
    """

    tag_sets: tuple[frozenset[str], ...]
    loads: tuple[int, ...]
    avg_com: float
    max_load: float

    def __post_init__(self) -> None:
        if len(self.tag_sets) != len(self.loads):
            raise ValueError("tag_sets and loads must have the same length")

    @property
    def k(self) -> int:
        return len(self.tag_sets)

    def build_assignment(self) -> "PartitionAssignment":
        """Materialise the assignment, restoring per-partition loads."""
        assignment = PartitionAssignment.from_tag_sets(self.tag_sets)
        for partition, load in zip(assignment.partitions, self.loads):
            partition.load = load
        return assignment


@dataclass(slots=True)
class Partition:
    """A single tag partition ``pr_i`` together with its bookkeeping load.

    Attributes
    ----------
    index:
        Position of the partition within its assignment; also the identity
        of the Calculator that will own it.
    tags:
        The set of tags assigned to the partition.
    load:
        The load accumulated while the partition was built: the number of
        window documents annotated with any of the partition's tags (the
        ``l_i`` of the problem statement).
    """

    index: int
    tags: set[str] = field(default_factory=set)
    load: int = 0

    def covers(self, tagset: Iterable[str]) -> bool:
        """Whether every tag of ``tagset`` is assigned to this partition."""
        return set(tagset) <= self.tags

    def add_tags(self, tags: Iterable[str], load: int = 0) -> None:
        """Add tags (e.g. a tagset or a disjoint set) and account its load."""
        self.tags.update(tags)
        self.load += load

    def shared_tags(self, tagset: Iterable[str]) -> int:
        """Number of tags of ``tagset`` already present in the partition."""
        return len(self.tags & set(tagset))

    def __contains__(self, tag: str) -> bool:
        return tag in self.tags

    def __len__(self) -> int:
        return len(self.tags)


class PartitionAssignment:
    """A complete assignment of tags to ``k`` partitions.

    Provides the queries the rest of the system needs:

    * routing — which partitions (Calculators) must receive a document,
    * coverage — is a tagset fully contained in some partition,
    * quality — replication factor and load distribution.
    """

    def __init__(self, partitions: Sequence[Partition]) -> None:
        self._partitions = list(partitions)
        self._index: dict[str, set[int]] = {}
        for partition in self._partitions:
            for tag in partition.tags:
                self._index.setdefault(tag, set()).add(partition.index)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, k: int) -> "PartitionAssignment":
        """``k`` empty partitions."""
        return cls([Partition(index=i) for i in range(k)])

    @classmethod
    def from_tag_sets(cls, tag_sets: Sequence[Iterable[str]]) -> "PartitionAssignment":
        """Build an assignment from plain tag collections (loads unknown)."""
        return cls(
            [Partition(index=i, tags=set(tags)) for i, tags in enumerate(tag_sets)]
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def partitions(self) -> list[Partition]:
        return self._partitions

    @property
    def k(self) -> int:
        """Number of partitions (Calculators)."""
        return len(self._partitions)

    def partition(self, index: int) -> Partition:
        return self._partitions[index]

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions)

    def __len__(self) -> int:
        return len(self._partitions)

    def all_tags(self) -> set[str]:
        """Union of all partitions' tags."""
        return set(self._index)

    # ------------------------------------------------------------------ #
    # Routing (Disseminator queries)
    # ------------------------------------------------------------------ #
    def partitions_for_tag(self, tag: str) -> set[int]:
        """Indices of the partitions that were assigned ``tag``."""
        return set(self._index.get(tag, ()))

    def route(self, tagset: Iterable[str]) -> dict[int, frozenset[str]]:
        """Which Calculators receive a document and which sub-tagset each gets.

        This mirrors the Disseminator: for a document annotated with
        ``tagset`` each Calculator ``j`` owning at least one of its tags is
        notified with the subset ``s_i^j`` of tags it owns (Section 6.2).
        """
        per_partition: dict[int, set[str]] = {}
        for tag in tagset:
            for index in self._index.get(tag, ()):
                per_partition.setdefault(index, set()).add(tag)
        return {index: frozenset(tags) for index, tags in per_partition.items()}

    def route_and_covered(
        self, tagset: Iterable[str]
    ) -> tuple[dict[int, frozenset[str]], bool]:
        """:meth:`route` plus whether some partition covers the whole tagset.

        The Disseminator needs both answers for every routed tagset; one
        pass over the inverted index replaces the separate
        :meth:`covering_partitions` walk on the hot path.  Identical to
        calling the two methods separately (the routing dict is built in
        the same tag/owner iteration order).
        """
        index_get = self._index.get
        per_partition: dict[int, set[str]] = {}
        covering: set[int] | None = None
        for tag in tagset:
            owners = index_get(tag)
            if owners is None:
                covering = set()
                continue
            for index in owners:
                bucket = per_partition.get(index)
                if bucket is None:
                    per_partition[index] = {tag}
                else:
                    bucket.add(tag)
            if covering is None:
                covering = set(owners)
            elif covering:
                covering &= owners
        routes = {index: frozenset(tags) for index, tags in per_partition.items()}
        return routes, bool(covering)

    def covering_partitions(self, tagset: Iterable[str]) -> list[int]:
        """Indices of partitions containing *all* tags of ``tagset``."""
        tags = list(tagset)
        if not tags:
            return []
        candidates = set(self._index.get(tags[0], ()))
        for tag in tags[1:]:
            candidates &= self._index.get(tag, set())
            if not candidates:
                break
        return sorted(candidates)

    def covers(self, tagset: Iterable[str]) -> bool:
        """Whether some partition contains all tags of ``tagset``."""
        return bool(self.covering_partitions(tagset))

    # ------------------------------------------------------------------ #
    # Mutation (Single Additions, Section 7.1)
    # ------------------------------------------------------------------ #
    def add_tagset(self, index: int, tagset: Iterable[str], load: int = 0) -> None:
        """Add a tagset to partition ``index`` and refresh the inverted index."""
        partition = self._partitions[index]
        new_tags = set(tagset)
        partition.add_tags(new_tags, load=load)
        for tag in new_tags:
            self._index.setdefault(tag, set()).add(index)

    # ------------------------------------------------------------------ #
    # Quality measures
    # ------------------------------------------------------------------ #
    def coverage(self, tagsets: Iterable[Iterable[str]]) -> float:
        """Fraction of the given tagsets fully covered by some partition."""
        tagset_list = [frozenset(s) for s in tagsets]
        if not tagset_list:
            return 1.0
        covered = sum(1 for tagset in tagset_list if self.covers(tagset))
        return covered / len(tagset_list)

    def replication_factor(self) -> float:
        """Average number of partitions a tag is assigned to.

        Equals 1.0 for perfectly disjoint partitions; larger values mean
        replicated tags and therefore communication overhead (criterion 2 of
        the problem statement).
        """
        if not self._index:
            return 0.0
        return sum(len(indices) for indices in self._index.values()) / len(self._index)

    def replicated_tags(self) -> set[str]:
        """Tags assigned to more than one partition."""
        return {tag for tag, indices in self._index.items() if len(indices) > 1}

    def loads(self) -> list[int]:
        """Bookkeeping load of every partition, by index."""
        return [partition.load for partition in self._partitions]

    def tag_counts(self) -> list[int]:
        """Number of tags in every partition, by index."""
        return [len(partition) for partition in self._partitions]

    def as_tag_sets(self) -> list[set[str]]:
        """The raw tag sets, useful for serialisation and tests."""
        return [set(partition.tags) for partition in self._partitions]

    def communication_load(self, tagsets: Iterable[Iterable[str]]) -> float:
        """Average number of partitions notified per tagset.

        This is the paper's *Communication* metric (Section 8.2.1): tagsets
        that do not reach any partition are excluded from the average.
        """
        total = 0
        counted = 0
        for tagset in tagsets:
            routes = self.route(tagset)
            if not routes:
                continue
            total += len(routes)
            counted += 1
        if counted == 0:
            return 0.0
        return total / counted

    def expected_calculator_loads(
        self, tagsets: Iterable[Iterable[str]]
    ) -> list[int]:
        """Notifications each Calculator would receive for the given tagsets."""
        loads = [0] * self.k
        for tagset in tagsets:
            for index in self.route(tagset):
                loads[index] += 1
        return loads

    def summary(self) -> Mapping[str, float]:
        """A compact quality summary used in logs and examples."""
        loads = self.loads()
        total_load = sum(loads) or 1
        return {
            "k": float(self.k),
            "tags": float(len(self._index)),
            "replication_factor": self.replication_factor(),
            "max_load_share": max(loads) / total_load if loads else 0.0,
        }
