"""Core data model: tagged documents and tagsets.

The paper considers a stream of documents (tweets) ``d_i``, each annotated
with a set of tags ``s_i = {t_1, t_2, ...}``.  This module provides small,
immutable value objects for documents and tagsets plus helpers for
normalising raw tag input.  Tagsets are hashable so that they can be used
as dictionary keys in counters, partitions and indexes throughout the
library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


def normalize_tag(tag: str) -> str:
    """Normalise a raw tag string.

    Tags are lower-cased and stripped of surrounding whitespace and a
    leading ``#``.  Empty results are rejected by :func:`make_tagset`.
    """
    return tag.strip().lstrip("#").lower()


def make_tagset(tags: Iterable[str]) -> frozenset[str]:
    """Build a normalised tagset from raw tag strings.

    Duplicate tags collapse, empty tags are dropped.
    """
    cleaned = {normalize_tag(tag) for tag in tags}
    cleaned.discard("")
    return frozenset(cleaned)


@dataclass(frozen=True, slots=True)
class Document:
    """A single document (e.g. a tweet) annotated with a set of tags.

    Attributes
    ----------
    doc_id:
        A unique identifier of the document within its stream.
    tags:
        The (normalised) set of tags annotating the document.
    timestamp:
        Arrival time in seconds.  The pipeline uses a simulated clock, so
        this is simulation time, not wall-clock time.
    text:
        Optional raw text of the document; not used by the algorithms but
        kept for realistic workloads and examples.
    """

    doc_id: int
    tags: frozenset[str]
    timestamp: float = 0.0
    text: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.tags, frozenset):
            object.__setattr__(self, "tags", frozenset(self.tags))

    @property
    def tagset(self) -> frozenset[str]:
        """Alias for :attr:`tags`; the paper calls this ``s_i``."""
        return self.tags

    def has_tags(self) -> bool:
        """Whether the document carries at least one tag."""
        return bool(self.tags)

    def __iter__(self) -> Iterator[str]:
        return iter(self.tags)

    def __len__(self) -> int:
        return len(self.tags)


@dataclass(slots=True)
class DocumentBatch:
    """A mutable, ordered collection of documents.

    Used by workload generators and the analysis layer when a window of
    documents needs to be treated as a unit.
    """

    documents: list[Document] = field(default_factory=list)

    def append(self, document: Document) -> None:
        self.documents.append(document)

    def extend(self, documents: Iterable[Document]) -> None:
        self.documents.extend(documents)

    def tagsets(self) -> list[frozenset[str]]:
        """Tagsets of all documents carrying at least one tag."""
        return [doc.tags for doc in self.documents if doc.tags]

    def distinct_tags(self) -> set[str]:
        """The global tag set ``TG`` of the batch."""
        tags: set[str] = set()
        for doc in self.documents:
            tags.update(doc.tags)
        return tags

    def time_span(self) -> tuple[float, float]:
        """Earliest and latest timestamp in the batch.

        Raises ``ValueError`` on an empty batch.
        """
        if not self.documents:
            raise ValueError("cannot compute the time span of an empty batch")
        times = [doc.timestamp for doc in self.documents]
        return min(times), max(times)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __len__(self) -> int:
        return len(self.documents)

    def __getitem__(self, index: int) -> Document:
        return self.documents[index]


def documents_from_tagsets(
    tagsets: Sequence[Iterable[str]],
    start_id: int = 0,
    timestamps: Sequence[float] | None = None,
) -> list[Document]:
    """Convenience constructor used heavily in tests and examples.

    Parameters
    ----------
    tagsets:
        One iterable of raw tag strings per document.
    start_id:
        Identifier assigned to the first document; subsequent documents get
        consecutive identifiers.
    timestamps:
        Optional per-document timestamps; defaults to ``0.0`` for all.
    """
    if timestamps is not None and len(timestamps) != len(tagsets):
        raise ValueError("timestamps must be as long as tagsets")
    documents = []
    for offset, tags in enumerate(tagsets):
        timestamp = timestamps[offset] if timestamps is not None else 0.0
        documents.append(
            Document(
                doc_id=start_id + offset,
                tags=make_tagset(tags),
                timestamp=timestamp,
            )
        )
    return documents
