"""Disjoint-set forest (union–find) over hashable items.

The Disjoint Sets (DS) partitioning algorithm (Algorithm 1 in the paper) and
the connectivity analysis of Section 8.2.6 both need the connected
components of the tag co-occurrence graph.  A union–find structure gives
them in near-linear time without materialising the graph.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Union–find with union by size and path compression.

    Items are added lazily: :meth:`find` and :meth:`union` create singleton
    sets for unknown items.
    """

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._size: dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Ensure ``item`` is present as (at least) a singleton set."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)

    def find(self, item: T) -> T:
        """Return the representative of ``item``'s set (adding it if new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path directly at the root.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: T, second: T) -> T:
        """Merge the sets containing ``first`` and ``second``.

        Returns the representative of the merged set.
        """
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def union_all(self, items: Iterable[T]) -> T | None:
        """Merge all ``items`` into a single set; returns its representative.

        Used to register a tagset: all tags co-occurring in one document end
        up in the same connected component.
        """
        iterator = iter(items)
        try:
            first = next(iterator)
        except StopIteration:
            return None
        root = self.find(first)
        for item in iterator:
            root = self.union(root, item)
        return root

    def connected(self, first: T, second: T) -> bool:
        """Whether the two items are currently in the same set."""
        if first not in self._parent or second not in self._parent:
            return False
        return self.find(first) == self.find(second)

    def component_size(self, item: T) -> int:
        """Number of items in the set containing ``item``."""
        return self._size[self.find(item)]

    def components(self) -> dict[T, set[T]]:
        """All disjoint sets, keyed by their representative."""
        groups: dict[T, set[T]] = {}
        for item in self._parent:
            groups.setdefault(self.find(item), set()).add(item)
        return groups

    def n_components(self) -> int:
        """Number of disjoint sets currently tracked."""
        return sum(1 for item, parent in self._parent.items() if item == parent)
