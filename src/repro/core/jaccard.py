"""Jaccard coefficient computation for sets of co-occurring tags.

The Jaccard coefficient of a tagset ``s = {t_1, ..., t_n}`` is defined in
Equation (1) of the paper as the ratio of the number of documents annotated
with *all* tags of ``s`` to the number of documents annotated with *any* of
them.  Calculators never see the raw per-tag document sets; they only keep,
for every set of co-occurring tags, a counter of documents annotated with
all of the set's tags (``SubsetCounter``), and recover the size of the union
via the inclusion–exclusion principle (Equation (2)).

This module provides:

* :func:`exact_jaccard` — ground truth computed directly from per-tag
  document sets (used in tests and as the reference in property tests),
* :class:`SubsetTupleCache` — a bounded LRU cache of tagset → subset-tuple
  enumerations, so repeated (trending) tagsets skip the
  ``itertools.combinations`` re-enumeration on every observation,
* :class:`SubsetCounter` — the counter table a Calculator maintains, with
  two reporting engines (see below),
* :class:`JaccardCalculator` — counts incoming tagset notifications and
  reports Jaccard coefficients the way the Calculator operator does,
* :func:`union_size_inclusion_exclusion` — Equation (2) on top of a counter
  table.

Counters are keyed internally by sorted tag tuples rather than frozensets:
a Calculator touches hundreds of thousands of subsets per report round,
tuples are markedly cheaper to build than frozensets (cache-entry
construction is the dominant miss cost), and the cached enumeration is
shared between the observe and report paths so each subset tuple is
constructed once per cache residency.  Only reported coefficients are
frozen, one frozenset per emitted result.

Reporting engines
-----------------
A report round must produce, for every counted tagset of at least two tags,
its support (the counter value) and the size of the union of its tags'
document sets.  Three engines compute the unions:

* ``"scratch"`` — the original path: for every counted key, re-enumerate
  its subsets with :func:`itertools.combinations` and walk the counter
  table once per key.  A key of ``m`` tags costs ``2^m − 1`` dictionary
  lookups, and because every subset of an observed tagset is itself a
  counted key, one distinct ``m``-tag tagset costs ``Σ_k C(m,k)·2^k ≈ 3^m``
  lookups per round.
* ``"incremental"`` (default) — the incremental reporting engine.  At
  observe time the counter additionally maintains the distinct observed
  tagset *types* — the state, growing with the counters, that tells the
  report which subset lattices exist.  At report time each distinct type
  is folded **once**: the counts of all ``2^m`` subsets of an ``m``-tag
  type are gathered into a subset lattice and a sum-over-subsets (SOS)
  transform produces the unions of *all* of its subsets simultaneously in
  ``m·2^m`` additions instead of ``3^m`` lookups.  Keys shared by several
  types (heavily overlapping tagsets) are emitted once.
* ``"delta"`` — the cross-round delta engine.  The incremental engine is
  incremental *within* a round but folds every type from zero on every
  round; the delta engine makes report rounds proportional to *change*.
  Observe time additionally maintains per-type observation
  multiplicities; at report time the multiplicities are diffed against
  the previous round, every tag of a changed type is marked dirty, and a
  type none of whose tags is dirty is **clean**: its subset lattice (and
  therefore every one of its coefficients) is provably unchanged, so its
  triples are re-asserted from a generation-stamped *carry table* — one
  dict hit instead of an ``m·2^m`` fold.  Dirty types are refolded
  through a per-type fold program precompiled on first encounter and
  carried across ``clear()`` resets: the interned subset enumeration,
  the reportable keys as cached frozensets (no per-round tuple or
  frozenset churn), fused allocation-free paths for 2- and 3-tag types,
  and a vectorised lattice fold for larger types when numpy is present.
  :meth:`SubsetCounter.report_delta_triples` additionally splits a
  round's results into *(changed, unchanged)* so the Calculator can ship
  only changed triples in-stream and re-assert the unchanged ones at
  drain time.

All engines produce bit-identical coefficients — they rearrange the same
exact integer sums (asserted by ``tests/core/test_jaccard.py`` and the
pipeline equivalence tests).

Worked inclusion–exclusion example
----------------------------------
Observe three notifications: ``{a, b}``, ``{a, b}`` and ``{a, c}``.  The
counter table becomes::

    (a,): 3    (b,): 2    (c,): 1    (a, b): 2    (a, c): 1

For the tagset ``{a, b}``, Equation (2) gives::

    |T_a ∪ T_b| = |T_a| + |T_b| − |T_a ∩ T_b| = 3 + 2 − 2 = 3

so ``J({a, b}) = CN({a, b}) / |T_a ∪ T_b| = 2 / 3``.  The incremental
engine reaches the same number through the signed subset lattice of the
observed type ``(a, b)``: it loads ``f = [0, −3, −2, +2]`` (counts of
``∅, {a}, {b}, {a,b}`` with sign ``(−1)^{|subset|}``), runs the SOS
transform to get the signed partial sums of every subset, and negates —
``union({a,b}) = −(−3 − 2 + 2) = 3`` — computing the unions of ``{a}``,
``{b}`` and ``{a, b}`` in the same pass.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from itertools import combinations
from operator import itemgetter, mul
from typing import Iterable, Mapping

try:  # The delta engine vectorises large lattice folds when numpy exists;
    import numpy as _np  # the pure-python fold below is the gated fallback.
except ImportError:  # pragma: no cover - numpy is in the default toolchain
    _np = None

from ..store import (
    COUNTER_STORES,
    DEFAULT_SPILL_THRESHOLD,
    CarryLog,
    SpillingCounterStore,
)

#: Reporting engines of :class:`SubsetCounter` / :class:`JaccardCalculator`
#: (mirrored by ``SystemConfig.reporting_engine`` and the CLI).
REPORTING_ENGINES = ("incremental", "scratch", "delta")

#: Default capacity of the per-Calculator subset-tuple LRU cache.  Sized for
#: the distinct-tagset working set of one report round on the benchmark
#: workloads (a few thousand types per Calculator) with room to keep
#: trending types warm across rounds.
DEFAULT_SUBSET_CACHE_SIZE = 4096


def exact_jaccard(document_sets: Iterable[set[int]]) -> float:
    """Ground-truth Jaccard coefficient of a collection of document sets.

    ``document_sets`` holds, for every tag of the tagset, the set of
    documents annotated with that tag.  Returns 0.0 when the union is empty.
    """
    sets = [set(s) for s in document_sets]
    if not sets:
        return 0.0
    intersection = set(sets[0])
    union: set[int] = set()
    for current in sets:
        intersection &= current
        union |= current
    if not union:
        return 0.0
    return len(intersection) / len(union)


def _subset_tuples(tags: Iterable[str]) -> list[tuple[str, ...]]:
    """All non-empty subsets of ``tags`` as sorted tuples."""
    tag_list = sorted(set(tags))
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(tag_list) + 1):
        subsets.extend(combinations(tag_list, size))
    return subsets


def all_nonempty_subsets(tags: Iterable[str]) -> list[frozenset[str]]:
    """All non-empty subsets of ``tags`` (the sets a Calculator counts)."""
    return [frozenset(combo) for combo in _subset_tuples(tags)]


def union_size_inclusion_exclusion(
    tagset: frozenset[str], intersection_counts: Mapping[frozenset[str], int]
) -> int:
    """Size of the union of the tags' document sets via inclusion–exclusion.

    ``intersection_counts[sub]`` must hold ``|⋂_{t∈sub} T_t|`` for every
    non-empty subset ``sub`` of ``tagset``; missing subsets are treated as
    empty intersections (count 0), which is exactly what a Calculator
    observes when a tag combination never arrived.
    """
    total = 0
    tags = sorted(tagset)
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        for combo in combinations(tags, size):
            total += sign * intersection_counts.get(frozenset(combo), 0)
    return total


def _union_size_from_tuple_counts(
    tags: tuple[str, ...], counts: Mapping[tuple[str, ...], int]
) -> int:
    """Inclusion–exclusion over tuple-keyed counters (``tags`` sorted).

    The per-key reference computation: one ``2^m − 1`` walk of the counter
    table.  Used by the scratch reporting engine, single-key queries and
    the centralised baseline's ground truth.
    """
    get = counts.get
    total = 0
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        subtotal = 0
        for combo in combinations(tags, size):
            subtotal += get(combo, 0)
        total += sign * subtotal
    return total


# --------------------------------------------------------------------- #
# Subset-tuple LRU cache
# --------------------------------------------------------------------- #
class SubsetTupleCache:
    """Bounded LRU cache of tagset → subset-tuple enumerations.

    Enumerating the subsets of an ``m``-tag tagset costs ``2^m`` tuple
    constructions; on trending streams the same tagsets recur thousands of
    times per round, so Calculators cache the enumeration per distinct
    sorted tag tuple.  Entries are evicted least-recently-used once
    ``capacity`` distinct tagsets are cached; an evicted tagset is simply
    re-enumerated (and re-cached) on its next occurrence, so eviction never
    affects correctness — only the hit rate (``stats()``).

    Entries are keyed by the *frozenset* of the tags — ``frozenset(fs)`` is
    a no-op for an incoming frozenset, so the hot observe path neither sorts
    nor copies the tagset on a cache hit.  Each entry holds three views of
    the same enumeration:

    * ``key`` — the canonical sorted tag tuple (computed once, on miss),
    * ``by_mask`` — subset tuples indexed by bitmask over ``key``
      (``by_mask[0] == ()``), the layout the incremental reporting engine's
      lattice transform consumes.  ``None`` when ``max_subset_size`` caps
      the enumeration (the capped enumeration is not a full lattice).
    * ``nonempty`` — the non-empty subset tuples as one flat tuple, the
      layout ``Counter.update`` consumes at observe time.
    """

    __slots__ = ("_entries", "capacity", "max_subset_size",
                 "hits", "misses", "evictions")

    def __init__(
        self,
        capacity: int = DEFAULT_SUBSET_CACHE_SIZE,
        max_subset_size: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_subset_size is not None and max_subset_size < 1:
            raise ValueError("max_subset_size must be at least 1 (or None)")
        self.capacity = capacity
        self.max_subset_size = max_subset_size
        self._entries: OrderedDict[
            frozenset[str],
            tuple[
                tuple[str, ...],
                tuple[tuple[str, ...], ...] | None,
                tuple[tuple[str, ...], ...],
            ],
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(
        self, tags: Iterable[str]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ]:
        """The ``(key, by_mask, nonempty)`` enumeration of a tagset."""
        fs = frozenset(tags)
        entries = self._entries
        entry = entries.get(fs)
        if entry is not None:
            self.hits += 1
            entries.move_to_end(fs)
            return entry
        self.misses += 1
        entry = self._build(tuple(sorted(fs)))
        entries[fs] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        return entry

    def peek(
        self, tags: Iterable[str]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ] | None:
        """A resident entry, or ``None`` — never builds, inserts or evicts.

        The scratch reporting engine probes with this: its per-round key
        working set can exceed the capacity many times over, and populating
        the LRU from the report path would evict the observe path's hot
        types without ever producing a future hit.  A resident entry counts
        as a hit (and is refreshed); absence is not counted as a miss.
        """
        entry = self._entries.get(frozenset(tags))
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(frozenset(tags))
        return entry

    def _build(
        self, key: tuple[str, ...]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ]:
        if self.max_subset_size is not None:
            capped: list[tuple[str, ...]] = []
            for size in range(1, min(len(key), self.max_subset_size) + 1):
                capped.extend(combinations(key, size))
            return key, None, tuple(capped)
        # Power-set doubling: after processing tag i, by_mask holds the
        # subsets of key[:i+1] indexed by bitmask (appending tag i maps
        # block 0..2^i−1 onto block 2^i..2^{i+1}−1), so the lattice layout
        # falls out of plain list concatenation instead of per-mask bit
        # tests.
        by_mask: list[tuple[str, ...]] = [()]
        for tag in key:
            by_mask += [subset + (tag,) for subset in by_mask]
        frozen = tuple(by_mask)
        return key, frozen, frozen[1:]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tags: object) -> bool:
        return tags in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop all entries (accounting is preserved)."""
        self._entries.clear()


#: Per-arity sign vectors of the subset lattice: ``_SIGNS[m][mask]`` is
#: ``(−1)^{popcount(mask)}``, the inclusion–exclusion sign of the subset
#: ``mask`` encodes.  Tiny (``m ≤ max_tags_per_document``) and shared by
#: every counter in the process.
_SIGNS: dict[int, tuple[int, ...]] = {}

#: Per-(arity, min-size) mask lists of reportable subsets (popcount ≥ the
#: report's minimum tagset size), shared like :data:`_SIGNS`.
_REPORT_MASKS: dict[tuple[int, int], tuple[int, ...]] = {}


def _signs(m: int) -> tuple[int, ...]:
    signs = _SIGNS.get(m)
    if signs is None:
        signs = tuple(-1 if mask.bit_count() & 1 else 1 for mask in range(1 << m))
        _SIGNS[m] = signs
    return signs


def _report_masks(m: int, min_size: int) -> tuple[int, ...]:
    masks = _REPORT_MASKS.get((m, min_size))
    if masks is None:
        masks = tuple(
            mask for mask in range(1, 1 << m) if mask.bit_count() >= min_size
        )
        _REPORT_MASKS[(m, min_size)] = masks
    return masks


#: Type size at which the delta engine's vectorised lattice fold beats the
#: pure-python sum-over-subsets (below it, the fused unrolled paths win on
#: constant factors; measured on the bench workloads).  Only consulted when
#: numpy imported.
_VECTOR_FOLD_MIN_TAGS = 6

#: Per-SubsetCounter cap on the tuple-key → frozenset memo (entries are
#: dropped wholesale beyond it; the memo is rebuilt lazily).
_FROZEN_MEMO_LIMIT = 1 << 17

#: numpy mirrors of :data:`_SIGNS` / :data:`_REPORT_MASKS`, shared like them.
_NP_SIGNS: dict[int, "object"] = {}
_NP_MASKS: dict[tuple[int, int], "object"] = {}

#: Per-(arity, min-size) C-level extractors of the reportable positions of
#: a lattice-ordered sequence (``by_mask``, the raw counts or the folded
#: sums) — the delta fold's *signed index lists*, shared like
#: :data:`_SIGNS`.  ``None`` marks a (m, min_size) with no reportable
#: subsets at all.
_REPORT_GETTERS: dict[tuple[int, int], "object"] = {}


def _np_signs(m: int):
    signs = _NP_SIGNS.get(m)
    if signs is None:
        signs = _np.array(_signs(m), dtype=_np.int64)
        _NP_SIGNS[m] = signs
    return signs


def _np_masks(m: int, min_size: int):
    masks = _NP_MASKS.get((m, min_size))
    if masks is None:
        masks = _np.array(_report_masks(m, min_size), dtype=_np.intp)
        _NP_MASKS[(m, min_size)] = masks
    return masks


def _report_getter(m: int, min_size: int):
    key = (m, min_size)
    if key not in _REPORT_GETTERS:
        masks = _report_masks(m, min_size)
        if not masks:
            getter = None
        elif len(masks) == 1:
            only = masks[0]
            getter = lambda seq, _i=only: (seq[_i],)  # noqa: E731
        else:
            getter = itemgetter(*masks)
        _REPORT_GETTERS[key] = getter
    return _REPORT_GETTERS[key]


class _DeltaCarryEntry:
    """One type's slot in the delta engine's carry table.

    Carries, across ``clear()`` resets, everything a report round needs for
    the type: the fold *program* (a precompiled, allocation-free recipe over
    the interned cache enumeration — see ``SubsetCounter._build_program``)
    and the last fold's emissions — the wire ``triples`` plus the parallel
    subset-tuple ``keys`` for dedup — reusable verbatim while the type
    stays clean.  ``gen`` stamps the last delta report that folded or
    revalidated the entry: results are only reusable when the stamp is
    exactly the previous report's (an unbroken chain of clean rounds) —
    anything older is invalidated and refolded.
    """

    __slots__ = ("gen", "min_size", "program", "keys", "triples", "ref")

    def __init__(self, gen: int, min_size: int, program: tuple) -> None:
        self.gen = gen
        self.min_size = min_size
        self.program = program
        self.keys: list[tuple[str, ...]] = []
        self.triples: list[tuple[frozenset[str], float, int]] = []
        #: With the spill store active, the ``(offset, length)`` of this
        #: entry's ``(keys, triples)`` blob in the :class:`CarryLog`
        #: (``keys``/``triples`` are emptied once offloaded).
        self.ref: tuple[int, int] | None = None


@dataclass(slots=True)
class JaccardResult:
    """A reported Jaccard coefficient.

    Mirrors the tuples ``(s_i, J(s_i), CN(s_i))`` emitted by Calculators:
    the tagset, its coefficient and the value of the supporting counter
    (the number of documents annotated with all tags of the set), which the
    Tracker uses to resolve duplicates.
    """

    tagset: frozenset[str]
    jaccard: float
    support: int


class SubsetCounter:
    """Counter table over sets of co-occurring tags.

    For every received tagset notification the Calculator increments the
    counter of *all* subsets of the notification (Section 6.2): receiving
    ``{a, b, c}`` increments the counters of ``{a}``, ``{b}``, ``{c}``,
    ``{a,b}``, ``{a,c}``, ``{b,c}`` and ``{a,b,c}``.  The counter of a set
    therefore equals the number of received documents annotated with all of
    the set's tags.

    Besides the subset counters the table maintains the reporting engines'
    state: the distinct observed tagset *types* with their observation
    multiplicities (the subset lattices the report must fold, and the
    delta engine's change signal — see the module docstring), the bounded
    LRU cache of subset enumerations shared by the observe and report
    paths, and — for the delta engine — the generation-stamped carry table
    of per-type fold programs and results that survives ``clear()``.
    """

    def __init__(
        self,
        max_tags_per_document: int = 12,
        subset_cache: SubsetTupleCache | None = None,
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
        counter_store: str = "dict",
        spill_dir: str | None = None,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    ) -> None:
        if subset_cache is not None and subset_cache.max_subset_size is not None:
            raise ValueError(
                "SubsetCounter needs full subset lattices; a cache with "
                "max_subset_size set cannot back the reporting engines"
            )
        if counter_store not in COUNTER_STORES:
            raise ValueError(
                f"counter_store must be one of {', '.join(COUNTER_STORES)}"
            )
        self.counter_store = counter_store
        #: The backing table: a plain ``Counter`` (default) or the
        #: out-of-core :class:`~repro.store.SpillingCounterStore`, which
        #: exposes the same mapping surface the engines fold over.  With
        #: the spill store active the delta carry's cached emissions move
        #: to an on-disk :class:`~repro.store.CarryLog` as well.
        if counter_store == "spill":
            self._counts: Counter | SpillingCounterStore = SpillingCounterStore(
                spill_dir=spill_dir, spill_threshold=spill_threshold
            )
            self._carry_log: CarryLog | None = CarryLog(self._counts.ensure_dir)
        else:
            self._counts = Counter()
            self._carry_log = None
        #: Distinct observed tagset types → observation multiplicity (reset
        #: per round): the incremental and delta engines fold each type's
        #: subset lattice at most once per report, and the delta engine
        #: diffs the multiplicities across rounds to find clean types.
        self._mults: dict[frozenset[str], int] = {}
        self._max_tags = max_tags_per_document
        self._cache = (
            subset_cache
            if subset_cache is not None
            else SubsetTupleCache(subset_cache_size)
        )
        # --- delta-engine state (carried across clear() resets) ---------- #
        #: Multiplicities at the last delta report (the diff baseline).
        self._prev_mults: dict[frozenset[str], int] = {}
        #: Generation-stamped carry table: type → fold program + last fold.
        self._carry: dict[frozenset[str], _DeltaCarryEntry] = {}
        self._delta_generation = 0
        #: Subset-tuple → frozenset memo shared by the delta fold programs
        #: and the read-path APIs (one frozenset per reported key per cache
        #: residency instead of per round).
        self._frozen: dict[tuple[str, ...], frozenset[str]] = {}
        # --- report accounting (cumulative, survives clear()) ------------ #
        self.carry_hits = 0
        self.carry_misses = 0
        self.carry_invalidations = 0
        self.carry_evictions = 0
        #: Types whose lattice was folded / reused verbatim, across rounds
        #: (the dirty/clean split the perf harness attributes wins with).
        self.types_folded = 0
        self.types_reused = 0

    @property
    def cache(self) -> SubsetTupleCache:
        """The subset-enumeration cache (shared with the report path)."""
        return self._cache

    def observe(self, tags: Iterable[str]) -> None:
        """Record one incoming tagset notification."""
        fs = frozenset(tags)  # no-op for the wire format (already frozen)
        if not fs:
            return
        if len(fs) > self._max_tags:
            # Guard against combinatorial blow-up on pathological documents;
            # real tweets carry < 10 tags (Section 3.1).
            fs = frozenset(sorted(fs)[: self._max_tags])
        _, _, nonempty = self._cache.lookup(fs)
        self._counts.update(nonempty)
        mults = self._mults
        mults[fs] = mults.get(fs, 0) + 1

    def count(self, tags: Iterable[str]) -> int:
        """Documents observed that carry all of ``tags``."""
        return self._counts.get(tuple(sorted(set(tags))), 0)

    def counted_tagsets(self, min_size: int = 2) -> list[frozenset[str]]:
        """All counted tag combinations with at least ``min_size`` tags.

        Keys whose frozenset is resident in the report path's memo (every
        key a delta fold ever reported) are returned as the *cached* object
        instead of a fresh ``frozenset`` per key per call.
        """
        frozen = self._frozen
        get = frozen.get
        return [
            get(key) or frozenset(key)  # counted keys are never empty
            for key in self._counts
            if len(key) >= min_size
        ]

    def items(self) -> Iterable[tuple[frozenset[str], int]]:
        """(tagset, count) pairs for all counted combinations.

        Like :meth:`counted_tagsets`, reuses memoised frozensets where
        resident instead of building a fresh one per key per call.
        """
        get = self._frozen.get
        for key, count in self._counts.items():
            yield (get(key) or frozenset(key)), count

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, tags: object) -> bool:
        return tuple(sorted(set(tags))) in self._counts  # type: ignore[arg-type]

    def clear(self) -> None:
        """Drop all counters (Calculators do this after each report round).

        The subset-enumeration cache, the delta engine's carry table and
        the multiplicity diff baseline all survive the reset on purpose:
        the trending tagsets of the next round are usually the same types.
        """
        self._counts.clear()
        self._mults = {}

    def jaccard(self, tags: Iterable[str]) -> float:
        """Jaccard coefficient of ``tags`` from the current counters."""
        key = tuple(sorted(set(tags)))
        intersection = self._counts.get(key, 0)
        if intersection == 0:
            return 0.0
        union = _union_size_from_tuple_counts(key, self._counts)
        if union <= 0:
            return 0.0
        return intersection / union

    # ------------------------------------------------------------------ #
    # Report engines
    # ------------------------------------------------------------------ #
    def report_triples(
        self, min_size: int = 2, engine: str = "incremental"
    ) -> list[tuple[frozenset[str], float, int]]:
        """Coefficients as raw ``(tagset, jaccard, support)`` wire triples.

        The hot reporting path: report rounds ship hundreds of thousands of
        coefficients per run, so the periodic emit, the end-of-run drain
        and the Tracker all consume these triples directly instead of
        wrapping each one in a :class:`JaccardResult`.  ``engine`` selects
        how unions are computed (see the module docstring); both engines
        return the same coefficients, differing only in result order and
        cost.
        """
        self._prepare_store_for_report()
        if engine == "incremental":
            return self._report_incremental(min_size)
        if engine == "scratch":
            return self._report_scratch(min_size)
        if engine == "delta":
            changed, unchanged = self._report_delta(min_size)
            return changed + unchanged
        raise ValueError(
            f"unknown reporting engine {engine!r}; "
            f"available: {', '.join(REPORTING_ENGINES)}"
        )

    def report_delta_triples(
        self, min_size: int = 2
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[frozenset[str], float, int]],
    ]:
        """The delta engine's round, split into ``(changed, unchanged)``.

        ``changed`` holds the triples of dirty types (folded this round);
        ``unchanged`` the triples re-asserted from the carry table for
        clean types — each of those is bit-identical to a triple already
        produced by an earlier round, which is what lets the Calculator
        defer shipping them until drain time (see
        ``operators/calculator.py``).  ``changed + unchanged`` is exactly
        the round's full result set (the other engines' output).
        """
        self._prepare_store_for_report()
        return self._report_delta(min_size)

    def _prepare_store_for_report(self) -> None:
        """Spill-store hook: compact live runs to one before folding.

        Report folds perform one counter lookup per lattice position, so
        the spill store k-way-merges its runs (in parallel where the
        process may spawn workers) down to a single mmap'd run first — the
        "merge at report/drain time" half of the out-of-core design.  A
        no-op for the default dict store.
        """
        if self.counter_store == "spill":
            self._counts.prepare_report()

    def report_results(
        self, min_size: int = 2, engine: str = "incremental"
    ) -> list[JaccardResult]:
        """Coefficients of every counted tagset of at least ``min_size`` tags."""
        return [
            JaccardResult(tagset, jaccard, support)
            for tagset, jaccard, support in self.report_triples(min_size, engine)
        ]

    def _report_scratch(
        self, min_size: int
    ) -> list[tuple[frozenset[str], float, int]]:
        """The reference engine: one union computation per counted key.

        Kept as the bit-identical equivalence reference for the incremental
        engine, but ported onto the :class:`SubsetTupleCache` enumerations:
        keys resident in the shared cache (the observe path caches every
        distinct observed type) skip the per-round
        :func:`itertools.combinations` re-enumeration and fold their cached
        ``by_mask`` lattice in one signed pass — the same exact integer sum
        :func:`_union_size_from_tuple_counts` computes, rearranged.
        Non-resident keys fall back to the direct walk: the report-side key
        working set can exceed the cache capacity many times over, and
        populating the LRU from here would evict the observe path's hot
        types for no future hit (see :meth:`SubsetTupleCache.peek`).
        """
        counts = self._counts
        lookup = counts.__getitem__  # Counter.__missing__ returns 0
        peek = self._cache.peek
        results = []
        for key, support in counts.items():
            if len(key) < min_size or support == 0:
                continue
            # Keys of 2–3 tags — the bulk of real streams — walk directly:
            # their unions are a handful of lookups, cheaper than any cache
            # probe.  Larger keys reuse the cached lattice when resident.
            entry = peek(key) if len(key) >= 4 else None
            if entry is not None:
                by_mask = entry[1]
                assert by_mask is not None  # full lattices, never size-capped
                # union = -Σ_{∅≠s⊆key} (−1)^{|s|}·CN(s); by_mask[0] is the
                # empty tuple, which is never a counted key, so the full
                # signed dot-product over the lattice equals the non-empty
                # sum.
                union = -sum(map(mul, _signs(len(key)), map(lookup, by_mask)))
            else:
                union = _union_size_from_tuple_counts(key, counts)
            if union <= 0:
                continue
            results.append((frozenset(key), support / union, support))
        return results

    def _report_incremental(
        self, min_size: int
    ) -> list[tuple[frozenset[str], float, int]]:
        """One subset-lattice fold per distinct observed tagset type.

        Every counted key is a subset of at least one observed type, so
        folding each type's lattice once covers all keys; keys shared by
        overlapping types are emitted on first encounter only.  The fold is
        the sum-over-subsets transform of the signed counts, after which
        ``union(subset) = −g[mask]`` for every subset of the type (exact
        integer arithmetic — identical to the scratch engine's sums).
        """
        counts = self._counts
        lookup = counts.__getitem__  # Counter.__missing__ returns 0
        cache_lookup = self._cache.lookup
        results: list[tuple[frozenset[str], float, int]] = []
        append = results.append
        done: set[tuple[str, ...]] = set()
        seen = done.add
        for vtype in self._mults:
            m = len(vtype)
            if m < min_size:
                continue  # contributes no reportable keys of its own
            self.types_folded += 1
            _, by_mask, _ = cache_lookup(vtype)
            assert by_mask is not None  # full lattices are never size-capped
            # Two- and three-tag types — the bulk of a trending stream once
            # routing splits tagsets per Calculator — fold via unrolled
            # inclusion–exclusion: the generic lattice machinery costs more
            # than these few additions.  Only exercised at the default
            # min_size=2 (reportable keys of 2..m tags).
            if m == 2 and min_size == 2:
                pair = by_mask[3]
                if pair not in done:
                    seen(pair)
                    support = lookup(pair)
                    union = lookup(by_mask[1]) + lookup(by_mask[2]) - support
                    if support and union > 0:
                        append((frozenset(pair), support / union, support))
                continue
            if m == 3 and min_size == 2:
                na = lookup(by_mask[1])
                nb = lookup(by_mask[2])
                nc = lookup(by_mask[4])
                nab = lookup(by_mask[3])
                nac = lookup(by_mask[5])
                nbc = lookup(by_mask[6])
                for key, support, union in (
                    (by_mask[3], nab, na + nb - nab),
                    (by_mask[5], nac, na + nc - nac),
                    (by_mask[6], nbc, nb + nc - nbc),
                    (
                        by_mask[7],
                        (nabc := lookup(by_mask[7])),
                        na + nb + nc - nab - nac - nbc + nabc,
                    ),
                ):
                    if key in done:
                        continue
                    seen(key)
                    if support and union > 0:
                        append((frozenset(key), support / union, support))
                continue
            size = 1 << m
            # Counts of all subsets of the type (reused as the per-key
            # supports below), then signed for the fold: g[mask] =
            # (−1)^{|subset|} · CN(subset) — all via C-level maps.
            raw = list(map(lookup, by_mask))
            g = list(map(mul, _signs(m), raw))
            # Sum-over-subsets: after the i-th pass g[mask] holds the signed
            # sum over all subsets differing from mask only in bits 0..i.
            # The lower half-block is untouched within a pass, so larger
            # blocks fold with one slice assignment.
            for i in range(m):
                bit = 1 << i
                step = bit << 1
                if bit >= 16:
                    for base in range(bit, size, step):
                        upper = base + bit
                        g[base:upper] = [
                            x + y for x, y in zip(g[base:upper], g[base - bit:base])
                        ]
                else:
                    for base in range(bit, size, step):
                        for mask in range(base, base + bit):
                            g[mask] += g[mask - bit]
            for mask in _report_masks(m, min_size):
                key = by_mask[mask]
                if key in done:
                    continue
                seen(key)
                support = raw[mask]
                union = -g[mask]
                if support == 0 or union <= 0:
                    continue
                append((frozenset(key), support / union, support))
        return results

    # ------------------------------------------------------------------ #
    # The delta engine
    # ------------------------------------------------------------------ #
    def _report_delta(
        self, min_size: int
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[frozenset[str], float, int]],
    ]:
        """One delta round: fold dirty types, re-assert clean ones.

        A type is *clean* when no type sharing a tag with it changed its
        observation multiplicity since the previous delta report: every
        count in its subset lattice is a sum of multiplicities of types
        containing that subset, so unchanged overlapping multiplicities
        imply an unchanged lattice — supports, unions and coefficients are
        all provably identical to the previous round and the carry table's
        cached results are re-emitted verbatim.  The check is conservative
        (tag-level), so reuse is always sound; a changed type merely dirties
        every type it overlaps.
        """
        mults = self._mults
        prev = self._prev_mults
        gen = self._delta_generation + 1
        self._delta_generation = gen
        # Tags touched by any type whose multiplicity changed since the
        # previous report (absent = multiplicity 0).
        dirty_tags: set[str] = set()
        mark = dirty_tags.update
        for fs, count in mults.items():
            if prev.get(fs) != count:
                mark(fs)
        for fs in prev:
            if fs not in mults:
                mark(fs)
        carry = self._carry
        log = self._carry_log
        changed: list[tuple[frozenset[str], float, int]] = []
        unchanged: list[tuple[frozenset[str], float, int]] = []
        emit_unchanged = unchanged.append
        done: set[tuple[str, ...]] = set()
        seen = done.add
        disjoint = dirty_tags.isdisjoint
        previous_gen = gen - 1
        for vtype in mults:
            m = len(vtype)
            if m < min_size:
                continue  # contributes no reportable keys of its own
            entry = carry.get(vtype)
            if entry is None:
                self.carry_misses += 1
                entry = _DeltaCarryEntry(
                    gen, min_size, self._build_program(vtype, m, min_size)
                )
                carry[vtype] = entry
            elif (
                entry.gen == previous_gen
                and entry.min_size == min_size
                and disjoint(vtype)
            ):
                # Clean: one dict hit replaces the whole fold.
                self.carry_hits += 1
                self.types_reused += 1
                entry.gen = gen
                if entry.ref is not None:
                    # Spilled carry: the emission lists live in the carry
                    # log; pickle round-trips them bit-identically.
                    cached_keys, cached_triples = log.read(entry.ref)
                else:
                    cached_keys, cached_triples = entry.keys, entry.triples
                for key, triple in zip(cached_keys, cached_triples):
                    if key not in done:
                        seen(key)
                        emit_unchanged(triple)
                continue
            else:
                self.carry_invalidations += 1
                entry.gen = gen
                if entry.min_size != min_size:
                    entry.min_size = min_size
                    entry.program = self._build_program(vtype, m, min_size)
            self.types_folded += 1
            # The fold applies (and advances) the done-filter itself, so a
            # type's cached emissions are exactly what it emitted — see the
            # coverage argument in _fold_program's docstring.
            self._fold_program(entry.program, done, entry)
            changed.extend(entry.triples)
            if log is not None:
                # Offload the fresh emission lists to the carry log and
                # keep only the blob ref in RAM (the carry table spills
                # with the counters).
                if entry.ref is not None:
                    log.release(entry.ref)
                entry.ref = log.append((entry.keys, entry.triples))
                entry.keys = []
                entry.triples = []
        # Bound the carry: drop entries not validated this round once the
        # table outgrows the live type set.  These are types that simply
        # stopped recurring — counted as evictions, not invalidations, so
        # the thrash diagnostic (invalidations = refolds of stale entries)
        # stays meaningful.
        if len(carry) > 2 * len(mults) + 256:
            stale = [vtype for vtype, entry in carry.items() if entry.gen != gen]
            for vtype in stale:
                entry = carry.pop(vtype)
                if log is not None and entry.ref is not None:
                    log.release(entry.ref)
            self.carry_evictions += len(stale)
        if log is not None:
            log.maybe_compact(carry.values())
        self._prev_mults = dict(mults)
        return changed, unchanged

    def _build_program(
        self, vtype: frozenset[str], m: int, min_size: int
    ) -> tuple:
        """Precompile one type's fold into an allocation-free program.

        Built once per carry residency (not per round) and deliberately
        cheap — one LRU resolution plus one C-level extraction of the
        reportable keys from the interned enumeration (all selector state —
        masks, signs, index getters — is shared per arity).  Refolding a
        dirty type thereafter touches no LRU, enumerates no combinations
        and builds no per-round tuples; frozensets are memoised at emit
        time, only for keys actually emitted.
        """
        _, by_mask, _ = self._cache.lookup(vtype)
        assert by_mask is not None  # full lattices are never size-capped
        if m == 2 and min_size == 2:
            return ("2", by_mask[1], by_mask[2], by_mask[3])
        if m == 3 and min_size == 2:
            return ("3", by_mask)
        getter = _report_getter(m, min_size)
        if getter is None:
            return ("empty",)
        keys = getter(by_mask)
        if _np is not None and m >= _VECTOR_FOLD_MIN_TAGS:
            return ("np", m, by_mask, keys, getter,
                    _np_masks(m, min_size), _np_signs(m))
        return ("py", m, by_mask, keys, getter)

    def _fold_program(
        self, program: tuple, done: set, entry: _DeltaCarryEntry
    ) -> None:
        """Run one precompiled fold, filling ``entry.keys``/``entry.triples``
        with the type's emissions and advancing ``done``.

        Every path rearranges the same exact integer sums as the scratch
        engine (bit-identical coefficients); they differ only in constant
        factors.  Two invariants carry the hot loops:

        * every reportable subset of an observed type was incremented by
          that type's own observations, so ``support ≥ 1`` and ``union ≥
          support > 0`` always hold — no dead filter branches;
        * keys already claimed by an earlier type this round (``done``)
          are skipped *before* any construction, exactly like the
          incremental engine.  The done-filtered emission list is cached
          on the carry entry and re-used while the type stays clean: any
          key this type skipped was emitted (and cached) by the claiming
          type, which shares the key's tags and therefore can only be
          clean when this type's view of the key is clean too — so across
          the clean types' caches every key stays covered exactly once.

        Emitted keys resolve their frozenset through the ``_frozen`` memo
        (inlined — this loop runs a few hundred thousand times per large
        run), so recurring keys freeze once per memo residency and the
        read-path APIs can reuse the same objects.
        """
        lookup = self._counts.__getitem__  # Counter.__missing__ returns 0
        frozen = self._frozen
        frozen_get = frozen.get
        seen = done.add
        kind = program[0]
        entry.keys = keys_out = []
        entry.triples = triples_out = []
        emit_key = keys_out.append
        emit = triples_out.append
        if kind == "2":
            _, key_a, key_b, pair = program
            if pair not in done:
                seen(pair)
                support = lookup(pair)
                fs = frozen_get(pair)
                if fs is None:
                    if len(frozen) >= _FROZEN_MEMO_LIMIT:
                        frozen.clear()
                    fs = frozenset(pair)
                    frozen[pair] = fs
                emit_key(pair)
                emit((fs, support / (lookup(key_a) + lookup(key_b) - support),
                      support))
            return
        if kind == "3":
            _, by_mask = program
            na = lookup(by_mask[1])
            nb = lookup(by_mask[2])
            nc = lookup(by_mask[4])
            nab = lookup(by_mask[3])
            nac = lookup(by_mask[5])
            nbc = lookup(by_mask[6])
            for key, support, union in (
                (by_mask[3], nab, na + nb - nab),
                (by_mask[5], nac, na + nc - nac),
                (by_mask[6], nbc, nb + nc - nbc),
                (
                    by_mask[7],
                    (nabc := lookup(by_mask[7])),
                    na + nb + nc - nab - nac - nbc + nabc,
                ),
            ):
                if key not in done:
                    seen(key)
                    fs = frozen_get(key)
                    if fs is None:
                        if len(frozen) >= _FROZEN_MEMO_LIMIT:
                            frozen.clear()
                        fs = frozenset(key)
                        frozen[key] = fs
                    emit_key(key)
                    emit((fs, support / union, support))
            return
        if kind == "empty":
            return
        if kind == "np":
            _, m, by_mask, keys, getter, masks, signs = program
            raw = list(map(lookup, by_mask))
            g = _np.array(raw, dtype=_np.int64)
            g *= signs
            lattice = g.reshape((2,) * m)
            # Sum-over-subsets, one vectorised add per tag axis; the adds
            # are the same integers the python transform sums.
            for axis in range(m):
                index: list = [slice(None)] * m
                index[axis] = 1
                upper = tuple(index)
                index[axis] = 0
                lattice[upper] += lattice[tuple(index)]
            unions = (-g[masks]).tolist()  # python ints: exact division below
            for key, support, union in zip(keys, getter(raw), unions):
                if key not in done:
                    seen(key)
                    fs = frozen_get(key)
                    if fs is None:
                        if len(frozen) >= _FROZEN_MEMO_LIMIT:
                            frozen.clear()
                        fs = frozenset(key)
                        frozen[key] = fs
                    emit_key(key)
                    emit((fs, support / union, support))
            return
        # kind == "py": the pure-python sum-over-subsets transform.
        _, m, by_mask, keys, getter = program
        size = 1 << m
        raw = list(map(lookup, by_mask))
        g = list(map(mul, _signs(m), raw))
        for i in range(m):
            bit = 1 << i
            step = bit << 1
            if bit >= 16:
                for base in range(bit, size, step):
                    upper = base + bit
                    g[base:upper] = [
                        x + y for x, y in zip(g[base:upper], g[base - bit:base])
                    ]
            else:
                for base in range(bit, size, step):
                    for mask in range(base, base + bit):
                        g[mask] += g[mask - bit]
        for key, support, gval in zip(keys, getter(raw), getter(g)):
            if key not in done:
                seen(key)
                fs = frozen_get(key)
                if fs is None:
                    if len(frozen) >= _FROZEN_MEMO_LIMIT:
                        frozen.clear()
                    fs = frozenset(key)
                    frozen[key] = fs
                emit_key(key)
                emit((fs, support / -gval, support))

    def carry_stats(self) -> dict[str, int]:
        """Delta carry-table accounting.

        ``carry_invalidations`` counts stale entries that had to be
        *refolded* (the thrash signal); ``carry_evictions`` counts entries
        swept because their type stopped recurring (a normal consequence
        of churn, never refolded).
        """
        return {
            "carry_hits": self.carry_hits,
            "carry_misses": self.carry_misses,
            "carry_invalidations": self.carry_invalidations,
            "carry_evictions": self.carry_evictions,
            "carry_size": len(self._carry),
        }

    def release_delta_state(self) -> None:
        """Drop the carry table, diff baseline and frozenset memo.

        Called after the final drain (worker-side under the process
        executor) so finished counters — and the bolts they are pickled
        back inside — carry no dead fold programs.  Accounting is
        preserved, like :meth:`SubsetTupleCache.clear`.  With the spill
        store active this also deletes the carry log and the (already
        emptied) spill directory; both are lazily recreated if the counter
        observes again.
        """
        self._carry.clear()
        self._prev_mults = {}
        self._frozen.clear()
        if self._carry_log is not None:
            self._carry_log.close()
        if self.counter_store == "spill":
            self._counts.close()

    def store_stats(self) -> dict[str, float] | None:
        """Spill-store accounting, or ``None`` under the default dict store.

        Spill/merge counters and block-cache hit/miss/eviction figures
        from the backing store, plus the delta carry log's blob/byte
        accounting.  Cumulative — survives ``clear()``, run deletion and
        pickling, like the subset-cache stats.
        """
        if self.counter_store != "spill":
            return None
        stats = self._counts.stats()
        if self._carry_log is not None:
            stats.update(self._carry_log.stats())
        return stats

    def _raw_items(self) -> Iterable[tuple[tuple[str, ...], int]]:
        """Internal tuple-keyed counter view used by tests."""
        return self._counts.items()

    def _raw_counts(self) -> Mapping[tuple[str, ...], int]:
        return self._counts


class JaccardCalculator:
    """Counts tagset notifications and reports Jaccard coefficients.

    This is the algorithmic core of the Calculator operator, factored out so
    it can be used standalone (e.g. in examples that do not need the full
    topology).  ``reporting_engine`` selects the union computation of the
    periodic report — ``"incremental"`` (default), the cross-round
    ``"delta"`` engine or the original ``"scratch"`` path — and
    ``subset_cache_size`` bounds the LRU cache of subset enumerations (see
    the module docstring).
    """

    def __init__(
        self,
        max_tags_per_document: int = 12,
        reporting_engine: str = "incremental",
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
        counter_store: str = "dict",
        spill_dir: str | None = None,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    ) -> None:
        if reporting_engine not in REPORTING_ENGINES:
            raise ValueError(
                f"reporting_engine must be one of {', '.join(REPORTING_ENGINES)}"
            )
        self._counter = SubsetCounter(
            max_tags_per_document,
            subset_cache_size=subset_cache_size,
            counter_store=counter_store,
            spill_dir=spill_dir,
            spill_threshold=spill_threshold,
        )
        self._observations = 0
        self.reporting_engine = reporting_engine
        self.counter_store = counter_store

    @property
    def observations(self) -> int:
        """Number of notifications observed since the last report."""
        return self._observations

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting of the subset-tuple LRU cache."""
        return self._counter.cache.stats()

    @property
    def carry_stats(self) -> dict[str, int]:
        """Delta carry-table accounting (all zero for the other engines)."""
        return self._counter.carry_stats()

    @property
    def store_stats(self) -> dict[str, float] | None:
        """Spill-store accounting (``None`` under the default dict store)."""
        return self._counter.store_stats()

    @property
    def counter(self) -> SubsetCounter:
        """The underlying counter table (report accounting lives there)."""
        return self._counter

    def release_delta_state(self) -> None:
        """Drop the delta engine's carried state (see ``SubsetCounter``)."""
        self._counter.release_delta_state()

    def observe(self, tags: Iterable[str]) -> None:
        """Record one tagset notification."""
        self._counter.observe(tags)
        self._observations += 1

    def coefficient(self, tags: Iterable[str]) -> float:
        """Current Jaccard coefficient of ``tags``."""
        return self._counter.jaccard(tags)

    def report(self, min_size: int = 2, reset: bool = True) -> list[JaccardResult]:
        """Compute coefficients for every counted co-occurring tagset.

        Mirrors the periodic reporting of Calculators: every ``y`` time
        units the maximum possible number of coefficients is emitted and the
        counters are deleted (``reset=True``).
        """
        return [
            JaccardResult(tagset, jaccard, support)
            for tagset, jaccard, support in self.report_triples(min_size, reset)
        ]

    def report_triples(
        self, min_size: int = 2, reset: bool = True
    ) -> list[tuple[frozenset[str], float, int]]:
        """:meth:`report` as raw wire triples (the Calculator hot path)."""
        results = self._counter.report_triples(
            min_size=min_size, engine=self.reporting_engine
        )
        if reset:
            self._counter.clear()
            self._observations = 0
        return results

    def drain_triples(
        self, min_size: int = 2
    ) -> list[tuple[frozenset[str], float, int]]:
        """Final-flush triples: :meth:`report_triples` with ``reset=True``,
        except the delta engine folds through the *incremental* path — a
        one-shot final fold would build carry programs it can never reuse.
        The triples are identical either way, and the untouched delta
        state (diff baseline, generations) stays internally consistent for
        any later rounds.
        """
        engine = (
            "incremental"
            if self.reporting_engine == "delta"
            else self.reporting_engine
        )
        counter = self._counter
        folded_before = counter.types_folded
        results = counter.report_triples(min_size=min_size, engine=engine)
        # The dirty/clean fold split attributes *in-stream* rounds (see
        # RunReport.report_round_stats); the one-shot drain fold is not one.
        counter.types_folded = folded_before
        counter.clear()
        self._observations = 0
        return results

    def migration_triples(
        self, min_size: int = 2
    ) -> list[tuple[frozenset[str], float, int]]:
        """Side-effect-free migration payload: the triples a drain would
        ship, with the counters left untouched.

        This is phase one of the two-phase state handoff: the payload is
        computed without mutating anything (same engine choice and
        ``types_folded`` compensation as :meth:`drain_triples`), so a
        migration aborted after this call leaves the Calculator exactly as
        it was.  Phase two — :meth:`reset_counts` — only runs once every
        participant prepared successfully.
        """
        engine = (
            "incremental"
            if self.reporting_engine == "delta"
            else self.reporting_engine
        )
        counter = self._counter
        folded_before = counter.types_folded
        results = counter.report_triples(min_size=min_size, engine=engine)
        counter.types_folded = folded_before
        return results

    def reset_counts(self) -> None:
        """Commit a migration: drop the counted window, keep derived state.

        Equivalent to the reset a report/drain performs — ``clear()`` drops
        the counts and multiplicities but deliberately preserves the subset
        cache and the delta engine's carry table/diff baseline, which are
        determined by the observation history and stay consistent across
        the handoff.
        """
        self._counter.clear()
        self._observations = 0

    def report_round_triples(
        self, min_size: int = 2, reset: bool = True
    ) -> tuple[
        list[tuple[frozenset[str], float, int]],
        list[tuple[frozenset[str], float, int]],
    ]:
        """One report round, split into ``(shipped, deferrable)`` triples.

        Under the delta engine, ``deferrable`` holds the clean types'
        triples — each one bit-identical to a triple already produced (and
        shipped) by an earlier round, so in-stream rounds may defer
        re-shipping them until drain time.  The other engines never defer:
        everything lands in ``shipped``.
        """
        if self.reporting_engine == "delta":
            shipped, deferrable = self._counter.report_delta_triples(min_size)
        else:
            shipped = self._counter.report_triples(
                min_size=min_size, engine=self.reporting_engine
            )
            deferrable = []
        if reset:
            self._counter.clear()
            self._observations = 0
        return shipped, deferrable
