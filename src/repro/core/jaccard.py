"""Jaccard coefficient computation for sets of co-occurring tags.

The Jaccard coefficient of a tagset ``s = {t_1, ..., t_n}`` is defined in
Equation (1) of the paper as the ratio of the number of documents annotated
with *all* tags of ``s`` to the number of documents annotated with *any* of
them.  Calculators never see the raw per-tag document sets; they only keep,
for every set of co-occurring tags, a counter of documents annotated with
all of the set's tags (``SubsetCounter``), and recover the size of the union
via the inclusion–exclusion principle (Equation (2)).

This module provides:

* :func:`exact_jaccard` — ground truth computed directly from per-tag
  document sets (used by the centralised baseline and in tests),
* :class:`SubsetCounter` — the counter table a Calculator maintains,
* :class:`JaccardCalculator` — counts incoming tagset notifications and
  reports Jaccard coefficients the way the Calculator operator does,
* :func:`union_size_inclusion_exclusion` — Equation (2) on top of a counter
  table.

Counters are keyed internally by sorted tag tuples rather than frozensets:
a Calculator evaluates hundreds of thousands of subsets per report round and
tuple keys shave a large constant factor off that loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Mapping


def exact_jaccard(document_sets: Iterable[set[int]]) -> float:
    """Ground-truth Jaccard coefficient of a collection of document sets.

    ``document_sets`` holds, for every tag of the tagset, the set of
    documents annotated with that tag.  Returns 0.0 when the union is empty.
    """
    sets = [set(s) for s in document_sets]
    if not sets:
        return 0.0
    intersection = set(sets[0])
    union: set[int] = set()
    for current in sets:
        intersection &= current
        union |= current
    if not union:
        return 0.0
    return len(intersection) / len(union)


def _subset_tuples(tags: Iterable[str]) -> list[tuple[str, ...]]:
    """All non-empty subsets of ``tags`` as sorted tuples."""
    tag_list = sorted(set(tags))
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(tag_list) + 1):
        subsets.extend(combinations(tag_list, size))
    return subsets


def all_nonempty_subsets(tags: Iterable[str]) -> list[frozenset[str]]:
    """All non-empty subsets of ``tags`` (the sets a Calculator counts)."""
    return [frozenset(combo) for combo in _subset_tuples(tags)]


def union_size_inclusion_exclusion(
    tagset: frozenset[str], intersection_counts: Mapping[frozenset[str], int]
) -> int:
    """Size of the union of the tags' document sets via inclusion–exclusion.

    ``intersection_counts[sub]`` must hold ``|⋂_{t∈sub} T_t|`` for every
    non-empty subset ``sub`` of ``tagset``; missing subsets are treated as
    empty intersections (count 0), which is exactly what a Calculator
    observes when a tag combination never arrived.
    """
    total = 0
    tags = sorted(tagset)
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        for combo in combinations(tags, size):
            total += sign * intersection_counts.get(frozenset(combo), 0)
    return total


def _union_size_from_tuple_counts(
    tags: tuple[str, ...], counts: Mapping[tuple[str, ...], int]
) -> int:
    """Inclusion–exclusion over tuple-keyed counters (``tags`` sorted)."""
    get = counts.get
    total = 0
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        subtotal = 0
        for combo in combinations(tags, size):
            subtotal += get(combo, 0)
        total += sign * subtotal
    return total


@dataclass(slots=True)
class JaccardResult:
    """A reported Jaccard coefficient.

    Mirrors the tuples ``(s_i, J(s_i), CN(s_i))`` emitted by Calculators:
    the tagset, its coefficient and the value of the supporting counter
    (the number of documents annotated with all tags of the set), which the
    Tracker uses to resolve duplicates.
    """

    tagset: frozenset[str]
    jaccard: float
    support: int


class SubsetCounter:
    """Counter table over sets of co-occurring tags.

    For every received tagset notification the Calculator increments the
    counter of *all* subsets of the notification (Section 6.2): receiving
    ``{a, b, c}`` increments the counters of ``{a}``, ``{b}``, ``{c}``,
    ``{a,b}``, ``{a,c}``, ``{b,c}`` and ``{a,b,c}``.  The counter of a set
    therefore equals the number of received documents annotated with all of
    the set's tags.
    """

    def __init__(self, max_tags_per_document: int = 12) -> None:
        self._counts: Counter = Counter()
        self._max_tags = max_tags_per_document

    def observe(self, tags: Iterable[str]) -> None:
        """Record one incoming tagset notification."""
        unique = sorted(set(tags))
        if not unique:
            return
        if len(unique) > self._max_tags:
            # Guard against combinatorial blow-up on pathological documents;
            # real tweets carry < 10 tags (Section 3.1).
            unique = unique[: self._max_tags]
        counts = self._counts
        for size in range(1, len(unique) + 1):
            for combo in combinations(unique, size):
                counts[combo] += 1

    def count(self, tags: Iterable[str]) -> int:
        """Documents observed that carry all of ``tags``."""
        return self._counts.get(tuple(sorted(set(tags))), 0)

    def counted_tagsets(self, min_size: int = 2) -> list[frozenset[str]]:
        """All counted tag combinations with at least ``min_size`` tags."""
        return [frozenset(key) for key in self._counts if len(key) >= min_size]

    def items(self) -> Iterable[tuple[frozenset[str], int]]:
        """(tagset, count) pairs for all counted combinations."""
        for key, count in self._counts.items():
            yield frozenset(key), count

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, tags: object) -> bool:
        return tuple(sorted(set(tags))) in self._counts  # type: ignore[arg-type]

    def clear(self) -> None:
        """Drop all counters (Calculators do this after each report round)."""
        self._counts.clear()

    def jaccard(self, tags: Iterable[str]) -> float:
        """Jaccard coefficient of ``tags`` from the current counters."""
        key = tuple(sorted(set(tags)))
        intersection = self._counts.get(key, 0)
        if intersection == 0:
            return 0.0
        union = _union_size_from_tuple_counts(key, self._counts)
        if union <= 0:
            return 0.0
        return intersection / union

    def _raw_items(self) -> Iterable[tuple[tuple[str, ...], int]]:
        """Internal tuple-keyed view used by the report fast path."""
        return self._counts.items()

    def _raw_counts(self) -> Mapping[tuple[str, ...], int]:
        return self._counts


class JaccardCalculator:
    """Counts tagset notifications and reports Jaccard coefficients.

    This is the algorithmic core of the Calculator operator, factored out so
    it can be used standalone (e.g. by the centralised baseline or in
    examples that do not need the full topology).
    """

    def __init__(self, max_tags_per_document: int = 12) -> None:
        self._counter = SubsetCounter(max_tags_per_document)
        self._observations = 0

    @property
    def observations(self) -> int:
        """Number of notifications observed since the last report."""
        return self._observations

    def observe(self, tags: Iterable[str]) -> None:
        """Record one tagset notification."""
        self._counter.observe(tags)
        self._observations += 1

    def coefficient(self, tags: Iterable[str]) -> float:
        """Current Jaccard coefficient of ``tags``."""
        return self._counter.jaccard(tags)

    def report(self, min_size: int = 2, reset: bool = True) -> list[JaccardResult]:
        """Compute coefficients for every counted co-occurring tagset.

        Mirrors the periodic reporting of Calculators: every ``y`` time
        units the maximum possible number of coefficients is emitted and the
        counters are deleted (``reset=True``).
        """
        counts = self._counter._raw_counts()
        results = []
        for key, support in self._counter._raw_items():
            if len(key) < min_size or support == 0:
                continue
            union = _union_size_from_tuple_counts(key, counts)
            if union <= 0:
                continue
            results.append(
                JaccardResult(
                    tagset=frozenset(key),
                    jaccard=support / union,
                    support=support,
                )
            )
        if reset:
            self._counter.clear()
            self._observations = 0
        return results
