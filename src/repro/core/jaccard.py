"""Jaccard coefficient computation for sets of co-occurring tags.

The Jaccard coefficient of a tagset ``s = {t_1, ..., t_n}`` is defined in
Equation (1) of the paper as the ratio of the number of documents annotated
with *all* tags of ``s`` to the number of documents annotated with *any* of
them.  Calculators never see the raw per-tag document sets; they only keep,
for every set of co-occurring tags, a counter of documents annotated with
all of the set's tags (``SubsetCounter``), and recover the size of the union
via the inclusion–exclusion principle (Equation (2)).

This module provides:

* :func:`exact_jaccard` — ground truth computed directly from per-tag
  document sets (used in tests and as the reference in property tests),
* :class:`SubsetTupleCache` — a bounded LRU cache of tagset → subset-tuple
  enumerations, so repeated (trending) tagsets skip the
  ``itertools.combinations`` re-enumeration on every observation,
* :class:`SubsetCounter` — the counter table a Calculator maintains, with
  two reporting engines (see below),
* :class:`JaccardCalculator` — counts incoming tagset notifications and
  reports Jaccard coefficients the way the Calculator operator does,
* :func:`union_size_inclusion_exclusion` — Equation (2) on top of a counter
  table.

Counters are keyed internally by sorted tag tuples rather than frozensets:
a Calculator touches hundreds of thousands of subsets per report round,
tuples are markedly cheaper to build than frozensets (cache-entry
construction is the dominant miss cost), and the cached enumeration is
shared between the observe and report paths so each subset tuple is
constructed once per cache residency.  Only reported coefficients are
frozen, one frozenset per emitted result.

Reporting engines
-----------------
A report round must produce, for every counted tagset of at least two tags,
its support (the counter value) and the size of the union of its tags'
document sets.  Two engines compute the unions:

* ``"scratch"`` — the original path: for every counted key, re-enumerate
  its subsets with :func:`itertools.combinations` and walk the counter
  table once per key.  A key of ``m`` tags costs ``2^m − 1`` dictionary
  lookups, and because every subset of an observed tagset is itself a
  counted key, one distinct ``m``-tag tagset costs ``Σ_k C(m,k)·2^k ≈ 3^m``
  lookups per round.
* ``"incremental"`` (default) — the incremental reporting engine.  At
  observe time the counter additionally maintains the set of *distinct
  observed tagset types* — the state, growing with the counters, that
  tells the report which subset lattices exist.  At report time each
  distinct type is folded **once**: the counts of all ``2^m`` subsets
  of an ``m``-tag type are gathered into a subset lattice and a
  sum-over-subsets (SOS) transform produces the unions of *all* of its
  subsets simultaneously in ``m·2^m`` additions instead of ``3^m`` lookups.
  Keys shared by several types (heavily overlapping tagsets) are emitted
  once.  Both engines produce bit-identical coefficients — the incremental
  engine rearranges the same exact integer sums (asserted by
  ``tests/core/test_jaccard.py`` and the pipeline equivalence tests).

Worked inclusion–exclusion example
----------------------------------
Observe three notifications: ``{a, b}``, ``{a, b}`` and ``{a, c}``.  The
counter table becomes::

    (a,): 3    (b,): 2    (c,): 1    (a, b): 2    (a, c): 1

For the tagset ``{a, b}``, Equation (2) gives::

    |T_a ∪ T_b| = |T_a| + |T_b| − |T_a ∩ T_b| = 3 + 2 − 2 = 3

so ``J({a, b}) = CN({a, b}) / |T_a ∪ T_b| = 2 / 3``.  The incremental
engine reaches the same number through the signed subset lattice of the
observed type ``(a, b)``: it loads ``f = [0, −3, −2, +2]`` (counts of
``∅, {a}, {b}, {a,b}`` with sign ``(−1)^{|subset|}``), runs the SOS
transform to get the signed partial sums of every subset, and negates —
``union({a,b}) = −(−3 − 2 + 2) = 3`` — computing the unions of ``{a}``,
``{b}`` and ``{a, b}`` in the same pass.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass
from itertools import combinations
from operator import mul
from typing import Iterable, Mapping

#: Reporting engines of :class:`SubsetCounter` / :class:`JaccardCalculator`
#: (mirrored by ``SystemConfig.reporting_engine`` and the CLI).
REPORTING_ENGINES = ("incremental", "scratch")

#: Default capacity of the per-Calculator subset-tuple LRU cache.  Sized for
#: the distinct-tagset working set of one report round on the benchmark
#: workloads (a few thousand types per Calculator) with room to keep
#: trending types warm across rounds.
DEFAULT_SUBSET_CACHE_SIZE = 4096


def exact_jaccard(document_sets: Iterable[set[int]]) -> float:
    """Ground-truth Jaccard coefficient of a collection of document sets.

    ``document_sets`` holds, for every tag of the tagset, the set of
    documents annotated with that tag.  Returns 0.0 when the union is empty.
    """
    sets = [set(s) for s in document_sets]
    if not sets:
        return 0.0
    intersection = set(sets[0])
    union: set[int] = set()
    for current in sets:
        intersection &= current
        union |= current
    if not union:
        return 0.0
    return len(intersection) / len(union)


def _subset_tuples(tags: Iterable[str]) -> list[tuple[str, ...]]:
    """All non-empty subsets of ``tags`` as sorted tuples."""
    tag_list = sorted(set(tags))
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(tag_list) + 1):
        subsets.extend(combinations(tag_list, size))
    return subsets


def all_nonempty_subsets(tags: Iterable[str]) -> list[frozenset[str]]:
    """All non-empty subsets of ``tags`` (the sets a Calculator counts)."""
    return [frozenset(combo) for combo in _subset_tuples(tags)]


def union_size_inclusion_exclusion(
    tagset: frozenset[str], intersection_counts: Mapping[frozenset[str], int]
) -> int:
    """Size of the union of the tags' document sets via inclusion–exclusion.

    ``intersection_counts[sub]`` must hold ``|⋂_{t∈sub} T_t|`` for every
    non-empty subset ``sub`` of ``tagset``; missing subsets are treated as
    empty intersections (count 0), which is exactly what a Calculator
    observes when a tag combination never arrived.
    """
    total = 0
    tags = sorted(tagset)
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        for combo in combinations(tags, size):
            total += sign * intersection_counts.get(frozenset(combo), 0)
    return total


def _union_size_from_tuple_counts(
    tags: tuple[str, ...], counts: Mapping[tuple[str, ...], int]
) -> int:
    """Inclusion–exclusion over tuple-keyed counters (``tags`` sorted).

    The per-key reference computation: one ``2^m − 1`` walk of the counter
    table.  Used by the scratch reporting engine, single-key queries and
    the centralised baseline's ground truth.
    """
    get = counts.get
    total = 0
    for size in range(1, len(tags) + 1):
        sign = 1 if size % 2 == 1 else -1
        subtotal = 0
        for combo in combinations(tags, size):
            subtotal += get(combo, 0)
        total += sign * subtotal
    return total


# --------------------------------------------------------------------- #
# Subset-tuple LRU cache
# --------------------------------------------------------------------- #
class SubsetTupleCache:
    """Bounded LRU cache of tagset → subset-tuple enumerations.

    Enumerating the subsets of an ``m``-tag tagset costs ``2^m`` tuple
    constructions; on trending streams the same tagsets recur thousands of
    times per round, so Calculators cache the enumeration per distinct
    sorted tag tuple.  Entries are evicted least-recently-used once
    ``capacity`` distinct tagsets are cached; an evicted tagset is simply
    re-enumerated (and re-cached) on its next occurrence, so eviction never
    affects correctness — only the hit rate (``stats()``).

    Entries are keyed by the *frozenset* of the tags — ``frozenset(fs)`` is
    a no-op for an incoming frozenset, so the hot observe path neither sorts
    nor copies the tagset on a cache hit.  Each entry holds three views of
    the same enumeration:

    * ``key`` — the canonical sorted tag tuple (computed once, on miss),
    * ``by_mask`` — subset tuples indexed by bitmask over ``key``
      (``by_mask[0] == ()``), the layout the incremental reporting engine's
      lattice transform consumes.  ``None`` when ``max_subset_size`` caps
      the enumeration (the capped enumeration is not a full lattice).
    * ``nonempty`` — the non-empty subset tuples as one flat tuple, the
      layout ``Counter.update`` consumes at observe time.
    """

    __slots__ = ("_entries", "capacity", "max_subset_size",
                 "hits", "misses", "evictions")

    def __init__(
        self,
        capacity: int = DEFAULT_SUBSET_CACHE_SIZE,
        max_subset_size: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_subset_size is not None and max_subset_size < 1:
            raise ValueError("max_subset_size must be at least 1 (or None)")
        self.capacity = capacity
        self.max_subset_size = max_subset_size
        self._entries: OrderedDict[
            frozenset[str],
            tuple[
                tuple[str, ...],
                tuple[tuple[str, ...], ...] | None,
                tuple[tuple[str, ...], ...],
            ],
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(
        self, tags: Iterable[str]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ]:
        """The ``(key, by_mask, nonempty)`` enumeration of a tagset."""
        fs = frozenset(tags)
        entries = self._entries
        entry = entries.get(fs)
        if entry is not None:
            self.hits += 1
            entries.move_to_end(fs)
            return entry
        self.misses += 1
        entry = self._build(tuple(sorted(fs)))
        entries[fs] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        return entry

    def peek(
        self, tags: Iterable[str]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ] | None:
        """A resident entry, or ``None`` — never builds, inserts or evicts.

        The scratch reporting engine probes with this: its per-round key
        working set can exceed the capacity many times over, and populating
        the LRU from the report path would evict the observe path's hot
        types without ever producing a future hit.  A resident entry counts
        as a hit (and is refreshed); absence is not counted as a miss.
        """
        entry = self._entries.get(frozenset(tags))
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(frozenset(tags))
        return entry

    def _build(
        self, key: tuple[str, ...]
    ) -> tuple[
        tuple[str, ...],
        tuple[tuple[str, ...], ...] | None,
        tuple[tuple[str, ...], ...],
    ]:
        if self.max_subset_size is not None:
            capped: list[tuple[str, ...]] = []
            for size in range(1, min(len(key), self.max_subset_size) + 1):
                capped.extend(combinations(key, size))
            return key, None, tuple(capped)
        # Power-set doubling: after processing tag i, by_mask holds the
        # subsets of key[:i+1] indexed by bitmask (appending tag i maps
        # block 0..2^i−1 onto block 2^i..2^{i+1}−1), so the lattice layout
        # falls out of plain list concatenation instead of per-mask bit
        # tests.
        by_mask: list[tuple[str, ...]] = [()]
        for tag in key:
            by_mask += [subset + (tag,) for subset in by_mask]
        frozen = tuple(by_mask)
        return key, frozen, frozen[1:]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tags: object) -> bool:
        return tags in self._entries

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting plus the current size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        """Drop all entries (accounting is preserved)."""
        self._entries.clear()


#: Per-arity sign vectors of the subset lattice: ``_SIGNS[m][mask]`` is
#: ``(−1)^{popcount(mask)}``, the inclusion–exclusion sign of the subset
#: ``mask`` encodes.  Tiny (``m ≤ max_tags_per_document``) and shared by
#: every counter in the process.
_SIGNS: dict[int, tuple[int, ...]] = {}

#: Per-(arity, min-size) mask lists of reportable subsets (popcount ≥ the
#: report's minimum tagset size), shared like :data:`_SIGNS`.
_REPORT_MASKS: dict[tuple[int, int], tuple[int, ...]] = {}


def _signs(m: int) -> tuple[int, ...]:
    signs = _SIGNS.get(m)
    if signs is None:
        signs = tuple(-1 if mask.bit_count() & 1 else 1 for mask in range(1 << m))
        _SIGNS[m] = signs
    return signs


def _report_masks(m: int, min_size: int) -> tuple[int, ...]:
    masks = _REPORT_MASKS.get((m, min_size))
    if masks is None:
        masks = tuple(
            mask for mask in range(1, 1 << m) if mask.bit_count() >= min_size
        )
        _REPORT_MASKS[(m, min_size)] = masks
    return masks


@dataclass(slots=True)
class JaccardResult:
    """A reported Jaccard coefficient.

    Mirrors the tuples ``(s_i, J(s_i), CN(s_i))`` emitted by Calculators:
    the tagset, its coefficient and the value of the supporting counter
    (the number of documents annotated with all tags of the set), which the
    Tracker uses to resolve duplicates.
    """

    tagset: frozenset[str]
    jaccard: float
    support: int


class SubsetCounter:
    """Counter table over sets of co-occurring tags.

    For every received tagset notification the Calculator increments the
    counter of *all* subsets of the notification (Section 6.2): receiving
    ``{a, b, c}`` increments the counters of ``{a}``, ``{b}``, ``{c}``,
    ``{a,b}``, ``{a,c}``, ``{b,c}`` and ``{a,b,c}``.  The counter of a set
    therefore equals the number of received documents annotated with all of
    the set's tags.

    Besides the subset counters the table maintains the incremental
    reporting engine's state: the set of distinct observed tagset *types*
    (the subset lattices the report must fold — see the module docstring),
    and the bounded LRU cache of subset enumerations shared by the observe
    and report paths.
    """

    def __init__(
        self,
        max_tags_per_document: int = 12,
        subset_cache: SubsetTupleCache | None = None,
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
    ) -> None:
        if subset_cache is not None and subset_cache.max_subset_size is not None:
            raise ValueError(
                "SubsetCounter needs full subset lattices; a cache with "
                "max_subset_size set cannot back the reporting engines"
            )
        self._counts: Counter = Counter()
        #: Distinct observed tagset types (reset per round): the incremental
        #: engine folds each type's subset lattice exactly once per report.
        self._types: set[frozenset[str]] = set()
        self._max_tags = max_tags_per_document
        self._cache = (
            subset_cache
            if subset_cache is not None
            else SubsetTupleCache(subset_cache_size)
        )

    @property
    def cache(self) -> SubsetTupleCache:
        """The subset-enumeration cache (shared with the report path)."""
        return self._cache

    def observe(self, tags: Iterable[str]) -> None:
        """Record one incoming tagset notification."""
        fs = frozenset(tags)  # no-op for the wire format (already frozen)
        if not fs:
            return
        if len(fs) > self._max_tags:
            # Guard against combinatorial blow-up on pathological documents;
            # real tweets carry < 10 tags (Section 3.1).
            fs = frozenset(sorted(fs)[: self._max_tags])
        _, _, nonempty = self._cache.lookup(fs)
        self._counts.update(nonempty)
        self._types.add(fs)

    def count(self, tags: Iterable[str]) -> int:
        """Documents observed that carry all of ``tags``."""
        return self._counts.get(tuple(sorted(set(tags))), 0)

    def counted_tagsets(self, min_size: int = 2) -> list[frozenset[str]]:
        """All counted tag combinations with at least ``min_size`` tags."""
        return [frozenset(key) for key in self._counts if len(key) >= min_size]

    def items(self) -> Iterable[tuple[frozenset[str], int]]:
        """(tagset, count) pairs for all counted combinations."""
        for key, count in self._counts.items():
            yield frozenset(key), count

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, tags: object) -> bool:
        return tuple(sorted(set(tags))) in self._counts  # type: ignore[arg-type]

    def clear(self) -> None:
        """Drop all counters (Calculators do this after each report round).

        The subset-enumeration cache survives the reset on purpose: the
        trending tagsets of the next round are usually the same types.
        """
        self._counts.clear()
        self._types.clear()

    def jaccard(self, tags: Iterable[str]) -> float:
        """Jaccard coefficient of ``tags`` from the current counters."""
        key = tuple(sorted(set(tags)))
        intersection = self._counts.get(key, 0)
        if intersection == 0:
            return 0.0
        union = _union_size_from_tuple_counts(key, self._counts)
        if union <= 0:
            return 0.0
        return intersection / union

    # ------------------------------------------------------------------ #
    # Report engines
    # ------------------------------------------------------------------ #
    def report_triples(
        self, min_size: int = 2, engine: str = "incremental"
    ) -> list[tuple[frozenset[str], float, int]]:
        """Coefficients as raw ``(tagset, jaccard, support)`` wire triples.

        The hot reporting path: report rounds ship hundreds of thousands of
        coefficients per run, so the periodic emit, the end-of-run drain
        and the Tracker all consume these triples directly instead of
        wrapping each one in a :class:`JaccardResult`.  ``engine`` selects
        how unions are computed (see the module docstring); both engines
        return the same coefficients, differing only in result order and
        cost.
        """
        if engine == "incremental":
            return self._report_incremental(min_size)
        if engine == "scratch":
            return self._report_scratch(min_size)
        raise ValueError(
            f"unknown reporting engine {engine!r}; "
            f"available: {', '.join(REPORTING_ENGINES)}"
        )

    def report_results(
        self, min_size: int = 2, engine: str = "incremental"
    ) -> list[JaccardResult]:
        """Coefficients of every counted tagset of at least ``min_size`` tags."""
        return [
            JaccardResult(tagset, jaccard, support)
            for tagset, jaccard, support in self.report_triples(min_size, engine)
        ]

    def _report_scratch(
        self, min_size: int
    ) -> list[tuple[frozenset[str], float, int]]:
        """The reference engine: one union computation per counted key.

        Kept as the bit-identical equivalence reference for the incremental
        engine, but ported onto the :class:`SubsetTupleCache` enumerations:
        keys resident in the shared cache (the observe path caches every
        distinct observed type) skip the per-round
        :func:`itertools.combinations` re-enumeration and fold their cached
        ``by_mask`` lattice in one signed pass — the same exact integer sum
        :func:`_union_size_from_tuple_counts` computes, rearranged.
        Non-resident keys fall back to the direct walk: the report-side key
        working set can exceed the cache capacity many times over, and
        populating the LRU from here would evict the observe path's hot
        types for no future hit (see :meth:`SubsetTupleCache.peek`).
        """
        counts = self._counts
        lookup = counts.__getitem__  # Counter.__missing__ returns 0
        peek = self._cache.peek
        results = []
        for key, support in counts.items():
            if len(key) < min_size or support == 0:
                continue
            # Keys of 2–3 tags — the bulk of real streams — walk directly:
            # their unions are a handful of lookups, cheaper than any cache
            # probe.  Larger keys reuse the cached lattice when resident.
            entry = peek(key) if len(key) >= 4 else None
            if entry is not None:
                by_mask = entry[1]
                assert by_mask is not None  # full lattices, never size-capped
                # union = -Σ_{∅≠s⊆key} (−1)^{|s|}·CN(s); by_mask[0] is the
                # empty tuple, which is never a counted key, so the full
                # signed dot-product over the lattice equals the non-empty
                # sum.
                union = -sum(map(mul, _signs(len(key)), map(lookup, by_mask)))
            else:
                union = _union_size_from_tuple_counts(key, counts)
            if union <= 0:
                continue
            results.append((frozenset(key), support / union, support))
        return results

    def _report_incremental(
        self, min_size: int
    ) -> list[tuple[frozenset[str], float, int]]:
        """One subset-lattice fold per distinct observed tagset type.

        Every counted key is a subset of at least one observed type, so
        folding each type's lattice once covers all keys; keys shared by
        overlapping types are emitted on first encounter only.  The fold is
        the sum-over-subsets transform of the signed counts, after which
        ``union(subset) = −g[mask]`` for every subset of the type (exact
        integer arithmetic — identical to the scratch engine's sums).
        """
        counts = self._counts
        lookup = counts.__getitem__  # Counter.__missing__ returns 0
        cache_lookup = self._cache.lookup
        results: list[tuple[frozenset[str], float, int]] = []
        append = results.append
        done: set[tuple[str, ...]] = set()
        seen = done.add
        for vtype in self._types:
            m = len(vtype)
            if m < min_size:
                continue  # contributes no reportable keys of its own
            _, by_mask, _ = cache_lookup(vtype)
            assert by_mask is not None  # full lattices are never size-capped
            # Two- and three-tag types — the bulk of a trending stream once
            # routing splits tagsets per Calculator — fold via unrolled
            # inclusion–exclusion: the generic lattice machinery costs more
            # than these few additions.  Only exercised at the default
            # min_size=2 (reportable keys of 2..m tags).
            if m == 2 and min_size == 2:
                pair = by_mask[3]
                if pair not in done:
                    seen(pair)
                    support = lookup(pair)
                    union = lookup(by_mask[1]) + lookup(by_mask[2]) - support
                    if support and union > 0:
                        append((frozenset(pair), support / union, support))
                continue
            if m == 3 and min_size == 2:
                na = lookup(by_mask[1])
                nb = lookup(by_mask[2])
                nc = lookup(by_mask[4])
                nab = lookup(by_mask[3])
                nac = lookup(by_mask[5])
                nbc = lookup(by_mask[6])
                for key, support, union in (
                    (by_mask[3], nab, na + nb - nab),
                    (by_mask[5], nac, na + nc - nac),
                    (by_mask[6], nbc, nb + nc - nbc),
                    (
                        by_mask[7],
                        (nabc := lookup(by_mask[7])),
                        na + nb + nc - nab - nac - nbc + nabc,
                    ),
                ):
                    if key in done:
                        continue
                    seen(key)
                    if support and union > 0:
                        append((frozenset(key), support / union, support))
                continue
            size = 1 << m
            # Counts of all subsets of the type (reused as the per-key
            # supports below), then signed for the fold: g[mask] =
            # (−1)^{|subset|} · CN(subset) — all via C-level maps.
            raw = list(map(lookup, by_mask))
            g = list(map(mul, _signs(m), raw))
            # Sum-over-subsets: after the i-th pass g[mask] holds the signed
            # sum over all subsets differing from mask only in bits 0..i.
            # The lower half-block is untouched within a pass, so larger
            # blocks fold with one slice assignment.
            for i in range(m):
                bit = 1 << i
                step = bit << 1
                if bit >= 16:
                    for base in range(bit, size, step):
                        upper = base + bit
                        g[base:upper] = [
                            x + y for x, y in zip(g[base:upper], g[base - bit:base])
                        ]
                else:
                    for base in range(bit, size, step):
                        for mask in range(base, base + bit):
                            g[mask] += g[mask - bit]
            for mask in _report_masks(m, min_size):
                key = by_mask[mask]
                if key in done:
                    continue
                seen(key)
                support = raw[mask]
                union = -g[mask]
                if support == 0 or union <= 0:
                    continue
                append((frozenset(key), support / union, support))
        return results

    def _raw_items(self) -> Iterable[tuple[tuple[str, ...], int]]:
        """Internal tuple-keyed counter view used by tests."""
        return self._counts.items()

    def _raw_counts(self) -> Mapping[tuple[str, ...], int]:
        return self._counts


class JaccardCalculator:
    """Counts tagset notifications and reports Jaccard coefficients.

    This is the algorithmic core of the Calculator operator, factored out so
    it can be used standalone (e.g. in examples that do not need the full
    topology).  ``reporting_engine`` selects the union computation of the
    periodic report — ``"incremental"`` (default) or the original
    ``"scratch"`` path — and ``subset_cache_size`` bounds the LRU cache of
    subset enumerations (see the module docstring).
    """

    def __init__(
        self,
        max_tags_per_document: int = 12,
        reporting_engine: str = "incremental",
        subset_cache_size: int = DEFAULT_SUBSET_CACHE_SIZE,
    ) -> None:
        if reporting_engine not in REPORTING_ENGINES:
            raise ValueError(
                f"reporting_engine must be one of {', '.join(REPORTING_ENGINES)}"
            )
        self._counter = SubsetCounter(
            max_tags_per_document, subset_cache_size=subset_cache_size
        )
        self._observations = 0
        self.reporting_engine = reporting_engine

    @property
    def observations(self) -> int:
        """Number of notifications observed since the last report."""
        return self._observations

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting of the subset-tuple LRU cache."""
        return self._counter.cache.stats()

    def observe(self, tags: Iterable[str]) -> None:
        """Record one tagset notification."""
        self._counter.observe(tags)
        self._observations += 1

    def coefficient(self, tags: Iterable[str]) -> float:
        """Current Jaccard coefficient of ``tags``."""
        return self._counter.jaccard(tags)

    def report(self, min_size: int = 2, reset: bool = True) -> list[JaccardResult]:
        """Compute coefficients for every counted co-occurring tagset.

        Mirrors the periodic reporting of Calculators: every ``y`` time
        units the maximum possible number of coefficients is emitted and the
        counters are deleted (``reset=True``).
        """
        return [
            JaccardResult(tagset, jaccard, support)
            for tagset, jaccard, support in self.report_triples(min_size, reset)
        ]

    def report_triples(
        self, min_size: int = 2, reset: bool = True
    ) -> list[tuple[frozenset[str], float, int]]:
        """:meth:`report` as raw wire triples (the Calculator hot path)."""
        results = self._counter.report_triples(
            min_size=min_size, engine=self.reporting_engine
        )
        if reset:
            self._counter.clear()
            self._observations = 0
        return results
