"""Co-occurrence statistics over a window of tagged documents.

This module collects the statistics every partitioning algorithm consumes:

* the set ``S`` of distinct tagsets seen in the window together with their
  occurrence counts,
* for every tag ``t_i`` the set ``T_i`` of documents annotated with it,
* the load ``l_j`` of a tagset ``s_j``, i.e. the number of documents
  annotated with *any* tag of ``s_j`` (these are the documents a Calculator
  that owns ``s_j`` would receive),
* the tagset graph of Section 4 (vertices = tagsets, edges between tagsets
  sharing a tag) and the tag co-occurrence graph used by the theory in
  Section 5.1.

Load queries are answered from per-tag document *bitmasks* (arbitrary-size
Python integers), because the partitioning algorithms issue thousands of
them per window and repeated ``set`` unions dominate the runtime otherwise.
The per-tag document-id sets are still kept for exact membership queries
(``documents_with_all`` / ``documents_with_any``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Iterator, Mapping

import networkx as nx

from .documents import Document
from .union_find import UnionFind


@dataclass(slots=True)
class CooccurrenceStatistics:
    """Accumulates tagset and tag statistics from a stream of documents.

    The structure is incremental: documents can be added one by one (as the
    Partitioner operator does while its window fills) and all derived
    quantities are available at any point.
    """

    tagset_counts: Counter = field(default_factory=Counter)
    tag_documents: dict[str, set[int]] = field(default_factory=dict)
    n_documents: int = 0
    n_tagged_documents: int = 0
    _tag_bits: dict[str, int] = field(default_factory=dict, repr=False)
    _doc_positions: dict[int, int] = field(default_factory=dict, repr=False)
    _next_position: int = field(default=0, repr=False)
    _load_cache: dict[frozenset, int] = field(default_factory=dict, repr=False)

    def add_document(self, document: Document) -> None:
        """Record one document."""
        self.n_documents += 1
        if not document.tags:
            return
        self.n_tagged_documents += 1
        self.tagset_counts[document.tags] += 1
        position = self._position_of(document.doc_id)
        bit = 1 << position
        for tag in document.tags:
            self.tag_documents.setdefault(tag, set()).add(document.doc_id)
            self._tag_bits[tag] = self._tag_bits.get(tag, 0) | bit
        if self._load_cache:
            self._load_cache.clear()

    def add_documents(self, documents: Iterable[Document]) -> None:
        for document in documents:
            self.add_document(document)

    def add_weighted_tagset(self, tagset: Iterable[str], count: int) -> None:
        """Record ``count`` synthetic documents all annotated with ``tagset``.

        Used when only (tagset, multiplicity) pairs are available — e.g. the
        Merger combining the windows of several Partitioners — without
        paying for ``count`` individual document insertions.  Synthetic
        document identifiers are consecutive and disjoint from any previous
        block, so load queries remain exact.
        """
        tags = frozenset(tagset)
        if not tags or count <= 0:
            return
        self.n_documents += count
        self.n_tagged_documents += count
        self.tagset_counts[tags] += count
        start = self._next_position
        self._next_position += count
        block = ((1 << count) - 1) << start
        for tag in tags:
            self._tag_bits[tag] = self._tag_bits.get(tag, 0) | block
        if self._load_cache:
            self._load_cache.clear()

    def _position_of(self, doc_id: int) -> int:
        position = self._doc_positions.get(doc_id)
        if position is None:
            position = self._next_position
            self._doc_positions[doc_id] = position
            self._next_position += 1
        return position

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def tagsets(self) -> list[frozenset[str]]:
        """Distinct tagsets ``S`` observed so far."""
        return list(self.tagset_counts)

    @property
    def tags(self) -> set[str]:
        """Global tag set ``TG`` observed so far."""
        return set(self._tag_bits)

    def tagset_count(self, tagset: frozenset[str]) -> int:
        """How many documents were annotated with exactly ``tagset``."""
        return self.tagset_counts.get(tagset, 0)

    def tag_document_count(self, tag: str) -> int:
        """``|T_i|``: the number of documents annotated with ``tag``."""
        return self._tag_bits.get(tag, 0).bit_count()

    def documents_with_any(self, tags: Iterable[str]) -> set[int]:
        """Documents annotated with any of ``tags`` (union of the ``T_i``).

        Only documents added via :meth:`add_document` carry identifiers;
        synthetic documents from :meth:`add_weighted_tagset` contribute to
        loads but not to these identifier sets.
        """
        documents: set[int] = set()
        for tag in tags:
            documents |= self.tag_documents.get(tag, set())
        return documents

    def documents_with_all(self, tags: Iterable[str]) -> set[int]:
        """Documents annotated with all of ``tags`` (intersection)."""
        tag_list = list(tags)
        if not tag_list:
            return set()
        result = set(self.tag_documents.get(tag_list[0], set()))
        for tag in tag_list[1:]:
            result &= self.tag_documents.get(tag, set())
            if not result:
                break
        return result

    def load(self, tags: Iterable[str]) -> int:
        """Load ``l_j`` of a tagset: documents annotated with any of its tags."""
        key = tags if isinstance(tags, frozenset) else frozenset(tags)
        cached = self._load_cache.get(key)
        if cached is not None:
            return cached
        mask = 0
        for tag in key:
            mask |= self._tag_bits.get(tag, 0)
        load = mask.bit_count()
        self._load_cache[key] = load
        return load

    def __len__(self) -> int:
        return len(self.tagset_counts)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self.tagset_counts)

    # ------------------------------------------------------------------ #
    # Graph views
    # ------------------------------------------------------------------ #
    def tag_components(self) -> dict[str, set[str]]:
        """Connected components of the tag co-occurrence graph.

        Two tags are connected when they co-occur in at least one tagset.
        Returns a mapping from a representative tag to its component.
        These are exactly the "disjoint sets" ``ds_j`` of Algorithm 1.
        """
        forest: UnionFind[str] = UnionFind(self._tag_bits)
        for tagset in self.tagset_counts:
            forest.union_all(tagset)
        return forest.components()

    def tagset_graph(self) -> nx.Graph:
        """The tagset graph of Section 4.

        Vertices are tagsets weighted by the number of documents annotated
        with them; an edge connects two tagsets that share at least one tag,
        weighted by the number of shared tags.
        """
        graph = nx.Graph()
        for tagset, count in self.tagset_counts.items():
            graph.add_node(tagset, weight=count)
        by_tag: dict[str, list[frozenset[str]]] = {}
        for tagset in self.tagset_counts:
            for tag in tagset:
                by_tag.setdefault(tag, []).append(tagset)
        for tagsets in by_tag.values():
            for first, second in combinations(tagsets, 2):
                shared = len(first & second)
                if graph.has_edge(first, second):
                    graph[first][second]["weight"] = max(
                        graph[first][second]["weight"], shared
                    )
                else:
                    graph.add_edge(first, second, weight=shared)
        return graph

    def tag_graph(self) -> nx.Graph:
        """The tag co-occurrence graph of Section 5.1.

        Vertices are tags; an edge connects two tags that co-occur in at
        least one document, weighted by the number of such documents.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._tag_bits)
        for tagset, count in self.tagset_counts.items():
            for first, second in combinations(sorted(tagset), 2):
                if graph.has_edge(first, second):
                    graph[first][second]["weight"] += count
                else:
                    graph.add_edge(first, second, weight=count)
        return graph

    def distinct_tag_pairs(self) -> int:
        """Number of distinct co-occurring tag pairs (edges of the tag graph)."""
        pairs: set[tuple[str, str]] = set()
        for tagset in self.tagset_counts:
            for first, second in combinations(sorted(tagset), 2):
                pairs.add((first, second))
        return len(pairs)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_documents(cls, documents: Iterable[Document]) -> "CooccurrenceStatistics":
        statistics = cls()
        statistics.add_documents(documents)
        return statistics

    @classmethod
    def from_tagset_counts(
        cls, counts: Mapping[frozenset[str], int]
    ) -> "CooccurrenceStatistics":
        """Build statistics from (tagset -> occurrence count) pairs.

        Synthetic document identifiers are assigned in disjoint consecutive
        blocks per tagset.  Useful in tests and whenever only aggregated
        counts are available (e.g. the Merger).
        """
        statistics = cls()
        for tagset, count in counts.items():
            statistics.add_weighted_tagset(tagset, count)
        return statistics
