"""Evaluation metrics used throughout the paper's experiments.

* **Communication** (Section 8.2.1): average number of messages sent from
  the Disseminator to Calculators per received tagset, ignoring tagsets that
  reach no Calculator.
* **Processing load / Gini coefficient** (Section 8.2.2): the share of
  notifications each Calculator receives; imbalance is summarised with the
  Gini coefficient of those shares (derived from the Lorenz curve).
* **Jaccard accuracy** (Section 8.2.3): the mean absolute error of reported
  coefficients against a centralised exact baseline, restricted to tagsets
  seen more than ``sn`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    Returns 0.0 for perfectly balanced loads (or for empty/all-zero input)
    and approaches ``1 - 1/n`` for maximally unbalanced ones.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0
    if np.any(data < 0):
        raise ValueError("gini_coefficient expects non-negative values")
    total = data.sum()
    if total == 0:
        return 0.0
    data = np.sort(data)
    n = data.size
    # Standard formulation based on the order statistics of the sample; the
    # result is clamped to [0, 1] to absorb floating-point round-off on
    # perfectly balanced inputs.
    index = np.arange(1, n + 1)
    value = (2.0 * np.sum(index * data) - (n + 1) * total) / (n * total)
    return float(min(max(value, 0.0), 1.0))


def lorenz_curve(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of a non-negative distribution.

    Returns the cumulative population share and the cumulative value share,
    both starting at 0.0 and ending at 1.0.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0 or data.sum() == 0:
        return np.array([0.0, 1.0]), np.array([0.0, 1.0])
    cumulative = np.concatenate(([0.0], np.cumsum(data)))
    population = np.linspace(0.0, 1.0, data.size + 1)
    return population, cumulative / cumulative[-1]


def load_shares(loads: Sequence[float]) -> list[float]:
    """Normalise absolute loads to shares that sum to 1 (0s if all zero)."""
    total = float(sum(loads))
    if total == 0:
        return [0.0] * len(loads)
    return [load / total for load in loads]


def max_load_share(loads: Sequence[float]) -> float:
    """The paper's ``maxLoad``: the largest share of notifications."""
    shares = load_shares(loads)
    return max(shares) if shares else 0.0


def load_variance(loads: Sequence[float]) -> float:
    """Variance of the load shares (alternative imbalance measure)."""
    shares = load_shares(loads)
    if not shares:
        return 0.0
    return float(np.var(shares))


@dataclass(slots=True)
class CommunicationTracker:
    """Running average of notifications sent per routed tagset.

    The Disseminator uses one of these both for global experiment metrics and
    for the rolling quality statistics of Section 7.2.
    """

    notifications: int = 0
    routed_tagsets: int = 0
    unrouted_tagsets: int = 0

    def record(self, n_notifications: int) -> None:
        """Record how many Calculators one incoming tagset was sent to."""
        if n_notifications <= 0:
            self.unrouted_tagsets += 1
            return
        self.notifications += n_notifications
        self.routed_tagsets += 1

    @property
    def average(self) -> float:
        """Average notifications per routed tagset (the Communication metric)."""
        if self.routed_tagsets == 0:
            return 0.0
        return self.notifications / self.routed_tagsets

    def reset(self) -> None:
        self.notifications = 0
        self.routed_tagsets = 0
        self.unrouted_tagsets = 0


@dataclass(slots=True)
class LoadTracker:
    """Per-Calculator notification counts and derived imbalance measures."""

    counts: dict[int, int] = field(default_factory=dict)

    def record(self, calculator: int, n: int = 1) -> None:
        self.counts[calculator] = self.counts.get(calculator, 0) + n

    def loads(self, k: int | None = None) -> list[int]:
        """Counts per Calculator index; missing Calculators count as 0."""
        if k is None:
            k = (max(self.counts) + 1) if self.counts else 0
        return [self.counts.get(index, 0) for index in range(k)]

    def gini(self, k: int | None = None) -> float:
        return gini_coefficient(self.loads(k))

    def max_share(self, k: int | None = None) -> float:
        return max_load_share(self.loads(k))

    def reset(self) -> None:
        self.counts.clear()


@dataclass(slots=True)
class JaccardErrorReport:
    """Accuracy of reported coefficients against a ground-truth mapping."""

    mean_absolute_error: float
    max_absolute_error: float
    n_compared: int
    n_missing: int

    @property
    def coverage(self) -> float:
        """Fraction of ground-truth tagsets that received some coefficient."""
        total = self.n_compared + self.n_missing
        if total == 0:
            return 1.0
        return self.n_compared / total


def jaccard_error(
    reported: Mapping[frozenset[str], float],
    ground_truth: Mapping[frozenset[str], float],
) -> JaccardErrorReport:
    """Compare reported coefficients against the centralised baseline.

    Only tagsets present in ``ground_truth`` are evaluated (the baseline
    already restricts itself to tagsets seen more than ``sn`` times, as in
    Section 8.2.3).  Ground-truth tagsets missing from ``reported`` count as
    missing, not as error.
    """
    errors = []
    missing = 0
    for tagset, truth in ground_truth.items():
        if tagset in reported:
            errors.append(abs(reported[tagset] - truth))
        else:
            missing += 1
    if errors:
        mean_error = float(np.mean(errors))
        max_error = float(np.max(errors))
    else:
        mean_error = 0.0
        max_error = 0.0
    return JaccardErrorReport(
        mean_absolute_error=mean_error,
        max_absolute_error=max_error,
        n_compared=len(errors),
        n_missing=missing,
    )


def replication_cost(partition_tag_sets: Iterable[Iterable[str]]) -> int:
    """Total replication: sum over tags of (#partitions containing it).

    This is criterion 2 of the problem statement; a value equal to the
    number of distinct tags means zero replication.
    """
    count = 0
    seen: set[str] = set()
    duplicates = 0
    for tags in partition_tag_sets:
        for tag in tags:
            count += 1
            if tag in seen:
                duplicates += 1
            seen.add(tag)
    return count
