"""Bloom filter over hashable items.

Section 2 of the paper argues that representing per-tag document sets with
Bloom filters [3] makes non-co-occurring tags look co-occurring because of
false positives.  This implementation is used by the sketch baseline
benchmark to measure exactly that effect.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable

from .encoding import canonical_bytes


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """Optimal (number of bits, number of hash functions) for a Bloom filter."""
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    n_bits = math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))
    n_hashes = max(1, round(n_bits / expected_items * math.log(2)))
    return n_bits, n_hashes


class BloomFilter:
    """A classic Bloom filter with double hashing.

    Parameters
    ----------
    expected_items:
        Number of distinct items the filter is sized for.
    false_positive_rate:
        Target false-positive probability at ``expected_items`` insertions.
    """

    def __init__(self, expected_items: int = 1000, false_positive_rate: float = 0.01) -> None:
        self.n_bits, self.n_hashes = optimal_parameters(
            expected_items, false_positive_rate
        )
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        self._bits = bytearray((self.n_bits + 7) // 8)
        self._count = 0

    def _positions(self, item: Hashable) -> list[int]:
        digest = hashlib.blake2b(canonical_bytes(item), digest_size=16).digest()
        first = int.from_bytes(digest[:8], "big")
        second = int.from_bytes(digest[8:], "big") or 1
        return [(first + i * second) % self.n_bits for i in range(self.n_hashes)]

    def add(self, item: Hashable) -> None:
        for position in self._positions(item):
            self._bits[position // 8] |= 1 << (position % 8)
        self._count += 1

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: Hashable) -> bool:
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(item)
        )

    def __len__(self) -> int:
        """Number of insertions performed (not distinct items)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set to 1."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.n_bits

    def estimated_false_positive_rate(self) -> float:
        """Current false-positive probability given the observed fill ratio."""
        return self.fill_ratio**self.n_hashes

    def intersection_may_be_nonempty(self, items: Iterable[Hashable]) -> bool:
        """Whether any of ``items`` may be present (no false negatives)."""
        return any(item in self for item in items)
