"""MinHash signatures and LSH for approximate Jaccard estimation.

The paper computes exact Jaccard coefficients via counters; its related-work
section argues that probabilistic sketches are a poor fit because false
positives make disjoint tags look co-occurring.  To quantify that argument
(and to provide the standard sketching baseline one would reach for today)
this module implements MinHash signatures with the multiply-add-shift
universal hash family (Dietzfelbinger et al.): with an odd random ``a`` and
a random ``b``, ``h(x) = ((a*x + b) mod 2^64) >> 32`` is 2-universal on
64-bit words — and the wraparound multiply is exactly what vectorised
``uint64`` arithmetic computes, so the permutations stay a single numpy
expression.  A banded LSH index for finding candidate pairs above a
similarity threshold rounds out the module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from .encoding import canonical_bytes

_MAX_HASH = (1 << 32) - 1


def _stable_hash(value: Hashable) -> int:
    """Deterministic 32-bit hash of an arbitrary hashable value."""
    digest = hashlib.blake2b(canonical_bytes(value), digest_size=8).digest()
    return int.from_bytes(digest, "big") & _MAX_HASH


class MinHash:
    """A MinHash signature of a set.

    Parameters
    ----------
    num_perm:
        Number of hash permutations (signature length).  The standard error
        of the Jaccard estimate is roughly ``1/sqrt(num_perm)``.
    seed:
        Seed of the permutation parameters; two signatures are only
        comparable when built with the same ``num_perm`` and ``seed``.
    """

    def __init__(self, num_perm: int = 128, seed: int = 1) -> None:
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        self.num_perm = num_perm
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Multiply-add-shift parameters: a must be odd for 2-universality.
        self._a = rng.integers(0, 1 << 64, size=num_perm, dtype=np.uint64) | np.uint64(1)
        self._b = rng.integers(0, 1 << 64, size=num_perm, dtype=np.uint64)
        self.values = np.full(num_perm, _MAX_HASH, dtype=np.uint64)

    def update(self, item: Hashable) -> None:
        """Add one element to the underlying set."""
        self.update_hashed(_stable_hash(item))

    def update_hashed(self, raw_hash: int) -> None:
        """Add an element given its precomputed 32-bit :func:`_stable_hash`.

        Callers that update many signatures with the same element (e.g. one
        document id fanned out to every tag of the document) hash the element
        once and reuse the digest, which halves the per-update cost.
        """
        raw = np.uint64(raw_hash)
        # Wraparound mod 2^64 is intentional: it is the multiply-add-shift
        # family's modulus, computed for free by uint64 arithmetic.
        hashes = (self._a * raw + self._b) >> np.uint64(32)
        np.minimum(self.values, hashes, out=self.values)

    def spawn(self) -> "MinHash":
        """An empty signature sharing this one's permutation parameters.

        Unlike the constructor this skips re-seeding the permutation RNG, so
        it is cheap enough to call once per distinct tag in a stream; the
        spawned signature is comparable with the parent and its siblings.
        """
        clone = object.__new__(MinHash)
        clone.num_perm = self.num_perm
        clone.seed = self.seed
        clone._a = self._a
        clone._b = self._b
        clone.values = np.full(self.num_perm, _MAX_HASH, dtype=np.uint64)
        return clone

    def update_all(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.update(item)

    def jaccard(self, other: "MinHash") -> float:
        """Estimate the Jaccard similarity with another signature."""
        self._check_compatible(other)
        return float(np.mean(self.values == other.values))

    @staticmethod
    def jaccard_multiway(signatures: Sequence["MinHash"]) -> float:
        """Estimate the multi-way Jaccard coefficient of several sets.

        Equation (1) generalises to ``|⋂ T_t| / |⋃ T_t|``; for one random
        permutation the minimum over the union is shared by *all* sets
        exactly when the union's minimiser lies in the intersection, which
        happens with probability ``|⋂| / |⋃|``.  The fraction of signature
        positions where every set agrees is therefore an unbiased estimate
        of the multi-way coefficient, with the usual ``1/sqrt(num_perm)``
        standard error.
        """
        if not signatures:
            return 0.0
        first = signatures[0]
        for other in signatures[1:]:
            first._check_compatible(other)
        if len(signatures) == 1:
            return 1.0 if not first.is_empty() else 0.0
        stacked = np.stack([signature.values for signature in signatures])
        return float(np.mean(np.all(stacked == stacked[0], axis=0)))

    def merge(self, other: "MinHash") -> None:
        """Union: after merging, the signature represents the union of sets."""
        self._check_compatible(other)
        np.minimum(self.values, other.values, out=self.values)

    def copy(self) -> "MinHash":
        clone = MinHash(self.num_perm, self.seed)
        clone.values = self.values.copy()
        return clone

    def is_empty(self) -> bool:
        return bool(np.all(self.values == _MAX_HASH))

    def _check_compatible(self, other: "MinHash") -> None:
        if self.num_perm != other.num_perm or self.seed != other.seed:
            raise ValueError(
                "MinHash signatures must share num_perm and seed to be compared"
            )

    @classmethod
    def from_items(
        cls, items: Iterable[Hashable], num_perm: int = 128, seed: int = 1
    ) -> "MinHash":
        signature = cls(num_perm=num_perm, seed=seed)
        signature.update_all(items)
        return signature


@dataclass(frozen=True, slots=True)
class _BandKey:
    band: int
    values: tuple[int, ...]


class MinHashLSH:
    """Banded locality-sensitive index over MinHash signatures.

    Splits each signature into ``bands`` bands of ``rows`` rows; two sets
    become candidates when they collide in at least one band.  The usual
    S-curve applies: the probability of becoming a candidate at similarity
    ``s`` is ``1 - (1 - s^rows)^bands``.
    """

    def __init__(self, num_perm: int = 128, bands: int = 32) -> None:
        if num_perm % bands != 0:
            raise ValueError("bands must divide num_perm")
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self._buckets: dict[_BandKey, set[Hashable]] = {}
        self._signatures: dict[Hashable, MinHash] = {}

    def insert(self, key: Hashable, signature: MinHash) -> None:
        if signature.num_perm != self.num_perm:
            raise ValueError("signature length does not match the index")
        if key in self._signatures:
            raise KeyError(f"key {key!r} already inserted")
        self._signatures[key] = signature
        for band_key in self._band_keys(signature):
            self._buckets.setdefault(band_key, set()).add(key)

    def query(self, signature: MinHash) -> set[Hashable]:
        """Keys whose signatures collide with ``signature`` in some band."""
        candidates: set[Hashable] = set()
        for band_key in self._band_keys(signature):
            candidates |= self._buckets.get(band_key, set())
        return candidates

    def candidate_pairs(self) -> set[tuple[Hashable, Hashable]]:
        """All unordered candidate pairs currently in the index."""
        pairs: set[tuple[Hashable, Hashable]] = set()
        for members in self._buckets.values():
            ordered = sorted(members, key=repr)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    pairs.add((first, second))
        return pairs

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def __len__(self) -> int:
        return len(self._signatures)

    def _band_keys(self, signature: MinHash) -> list[_BandKey]:
        keys = []
        for band in range(self.bands):
            start = band * self.rows
            stop = start + self.rows
            keys.append(
                _BandKey(band=band, values=tuple(int(v) for v in signature.values[start:stop]))
            )
        return keys


def candidate_probability(similarity: float, bands: int, rows: int) -> float:
    """Probability that LSH reports a pair with the given true similarity."""
    if not 0.0 <= similarity <= 1.0:
        raise ValueError("similarity must lie in [0, 1]")
    return 1.0 - (1.0 - similarity**rows) ** bands


def estimate_pairwise_jaccard(
    sets: Sequence[Iterable[Hashable]], num_perm: int = 128, seed: int = 1
) -> dict[tuple[int, int], float]:
    """Pairwise MinHash Jaccard estimates for a list of sets (by index)."""
    signatures = [MinHash.from_items(s, num_perm=num_perm, seed=seed) for s in sets]
    estimates = {}
    for i in range(len(signatures)):
        for j in range(i + 1, len(signatures)):
            estimates[(i, j)] = signatures[i].jaccard(signatures[j])
    return estimates
