"""Canonical byte encoding of sketch keys.

The sketches index their tables by a blake2b digest of the key.  Digesting
``repr(item)`` is *not* sound for sets: ``repr`` of a frozenset follows
iteration order, which depends on the per-process hash salt **and** on
collision-probing history — two equal frozensets built from differently
ordered inputs can repr differently within one process.  A sketch then
indexes different cells in ``add`` and ``estimate``/membership for the
same logical key, which breaks Count-Min's never-under-estimate guarantee
and Bloom's no-false-negative guarantee (observed as a rare,
hash-salt-dependent flake in ``benchmarks/test_sketch_baseline.py``).

``canonical_bytes`` therefore encodes sets as their *sorted* element
reprs.  Nested containers of sets are not canonicalised (no current sketch
key shape needs it); everything non-set falls back to plain ``repr``.
"""

from __future__ import annotations

from typing import Hashable

#: Unit separator — cannot appear in the repr of the tag strings and small
#: tuples used as sketch keys, so joined encodings cannot collide by
#: concatenation.
_SEP = "\x1f"


def canonical_bytes(item: Hashable) -> bytes:
    """Order-independent UTF-8 encoding of a sketch key."""
    if isinstance(item, (frozenset, set)):
        return _SEP.join(sorted(map(repr, item))).encode("utf-8")
    return repr(item).encode("utf-8")
