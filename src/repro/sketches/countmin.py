"""Count-Min sketch for approximate frequency counting.

The related-work discussion (Section 2) mentions Count-Min sketches [5] as
a way to accelerate set operations; like Bloom filters they over-estimate,
which in this problem turns disjoint tag pairs into apparent co-occurrences.
The sketch is also handy as a memory-bounded alternative to the exact
subset counters of the Calculator, and the sketch baseline benchmark uses it
to quantify the estimation error that substitution would introduce.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable

import numpy as np

from .encoding import canonical_bytes


class CountMinSketch:
    """A Count-Min sketch with conservative point queries.

    Parameters
    ----------
    epsilon:
        Additive over-estimation bound as a fraction of the total count.
    delta:
        Probability that the bound is exceeded.
    """

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self.width = math.ceil(math.e / epsilon)
        self.depth = math.ceil(math.log(1.0 / delta))
        self.epsilon = epsilon
        self.delta = delta
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self._total = 0

    def _columns(self, item: Hashable) -> list[int]:
        digest = hashlib.blake2b(canonical_bytes(item), digest_size=16).digest()
        first = int.from_bytes(digest[:8], "big")
        second = int.from_bytes(digest[8:], "big") or 1
        return [(first + row * second) % self.width for row in range(self.depth)]

    def add(self, item: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("Count-Min sketch does not support negative updates")
        for row, column in enumerate(self._columns(item)):
            self._table[row, column] += count
        self._total += count

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def estimate(self, item: Hashable) -> int:
        """Point query: an over-estimate of the item's true count."""
        return int(
            min(self._table[row, column] for row, column in enumerate(self._columns(item)))
        )

    def __getitem__(self, item: Hashable) -> int:
        return self.estimate(item)

    @property
    def total(self) -> int:
        """Total number of counted events."""
        return self._total

    def error_bound(self) -> float:
        """Additive error bound ``epsilon * total`` of any point query."""
        return self.epsilon * self._total

    def estimate_jaccard(self, tagset: Iterable[Hashable], union_size: int) -> float:
        """Approximate a Jaccard coefficient from sketched intersection counts.

        ``tagset`` is queried as a single composite key (the sketch counts
        tag combinations, mirroring the Calculator's subset counters) and
        divided by a caller-provided union size.
        """
        if union_size <= 0:
            return 0.0
        return min(1.0, self.estimate(frozenset(tagset)) / union_size)
