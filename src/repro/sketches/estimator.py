"""Sketch-backed Jaccard estimation: the core of the approximate tracking mode.

The paper's Calculators keep one exact counter per observed tag combination
and recover union sizes with inclusion–exclusion (Equation 2).  The
:class:`SketchJaccardEstimator` replaces that counter table with two
sketches:

* one :class:`~repro.sketches.minhash.MinHash` signature per tag, updated
  with the ids of the documents that carry the tag.  The multi-way Jaccard
  coefficient of a tagset is then estimated directly from the signatures
  (:meth:`MinHash.jaccard_multiway`) — no inclusion–exclusion, no
  per-subset counters, and the per-document work is linear in the number of
  tags instead of exponential;
* one :class:`~repro.sketches.countmin.CountMinSketch` over tag
  combinations, providing the support counts ``CN(s_i)`` that the Tracker
  uses to deduplicate reports.  Count-Min only over-estimates, so a
  replicated tagset still wins dedup by the longest-tracked counter.

Only the *keys* of the tracked combinations are kept exactly (they must be
enumerable at report time); their counts and the per-tag document sets are
sketched.  Subset keys are capped at ``max_subset_size`` tags — the same cap
the centralised baseline uses — so a document with ``m`` tags registers
``O(m^max_subset_size)`` keys instead of ``2^m`` counters.

Usage::

    >>> estimator = SketchJaccardEstimator(num_perm=256)
    >>> estimator.observe(["python", "pydata"], doc_id=1)
    >>> estimator.observe(["python", "pydata"], doc_id=2)
    >>> estimator.coefficient(["python", "pydata"])  # true J = 1.0, exact here
    1.0
    >>> estimator.observe(["python"], doc_id=3)      # now true J = 2/3
    >>> abs(estimator.coefficient(["python", "pydata"]) - 2 / 3) < 0.2
    True

The estimator mirrors :class:`repro.core.jaccard.JaccardCalculator`'s
interface (``observe`` / ``report`` / ``coefficient``) so the two are
interchangeable inside the Calculator operator.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable

from ..core.jaccard import JaccardResult
from .countmin import CountMinSketch
from .minhash import MinHash, _stable_hash


class SketchJaccardEstimator:
    """Estimates tagset Jaccard coefficients from per-tag MinHash signatures.

    Parameters
    ----------
    num_perm:
        MinHash signature width; the standard error of every estimate is
        roughly ``1/sqrt(num_perm)``.
    seed:
        Seed of the shared permutation family; all signatures spawned by one
        estimator are mutually comparable.
    countmin_epsilon, countmin_delta:
        Count-Min parameters for the support counts (additive over-estimate
        of at most ``epsilon * total`` with probability ``1 - delta``).
    max_subset_size:
        Largest tag-combination size tracked for reporting (the centralised
        baseline's cap, default 4).
    max_tags_per_document:
        Safety cap mirroring :class:`~repro.core.jaccard.SubsetCounter`.
    """

    def __init__(
        self,
        num_perm: int = 512,
        seed: int = 1,
        countmin_epsilon: float = 0.002,
        countmin_delta: float = 0.01,
        max_subset_size: int = 4,
        max_tags_per_document: int = 12,
    ) -> None:
        if num_perm < 8:
            raise ValueError("num_perm must be at least 8")
        if max_subset_size < 2:
            raise ValueError("max_subset_size must be at least 2")
        self.num_perm = num_perm
        self.seed = seed
        self.max_subset_size = max_subset_size
        self._max_tags = max_tags_per_document
        self._countmin_epsilon = countmin_epsilon
        self._countmin_delta = countmin_delta
        # Template signature: spawns share its permutation arrays, so the
        # per-new-tag cost is one numpy allocation, not an RNG re-seed.
        self._template = MinHash(num_perm=num_perm, seed=seed)
        self._signatures: dict[str, MinHash] = {}
        self._support = CountMinSketch(epsilon=countmin_epsilon, delta=countmin_delta)
        self._keys: set[tuple[str, ...]] = set()
        self._observations = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def observations(self) -> int:
        """Notifications observed since the last resetting report."""
        return self._observations

    @property
    def tracked_tagsets(self) -> int:
        """Number of distinct tag combinations currently tracked."""
        return len(self._keys)

    @property
    def error_bound(self) -> float:
        """Standard error of one Jaccard estimate (``1/sqrt(num_perm)``)."""
        return 1.0 / math.sqrt(self.num_perm)

    def observe(self, tags: Iterable[str], doc_id: object) -> None:
        """Record that document ``doc_id`` carried (this subset of) ``tags``."""
        unique = sorted(set(tags))
        if not unique:
            return
        if len(unique) > self._max_tags:
            unique = unique[: self._max_tags]
        raw_hash = _stable_hash(doc_id)
        for tag in unique:
            signature = self._signatures.get(tag)
            if signature is None:
                signature = self._template.spawn()
                self._signatures[tag] = signature
            signature.update_hashed(raw_hash)
        max_size = min(len(unique), self.max_subset_size)
        for size in range(2, max_size + 1):
            for combo in combinations(unique, size):
                self._support.add(combo)
                self._keys.add(combo)
        self._observations += 1

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def coefficient(self, tags: Iterable[str]) -> float:
        """Current estimate of the Jaccard coefficient of ``tags``."""
        signatures = [self._signatures.get(tag) for tag in set(tags)]
        if not signatures or any(signature is None for signature in signatures):
            return 0.0
        return MinHash.jaccard_multiway(signatures)  # type: ignore[arg-type]

    def support(self, tags: Iterable[str]) -> int:
        """Count-Min estimate of how many documents carried all of ``tags``."""
        return self._support.estimate(tuple(sorted(set(tags))))

    def report(self, min_size: int = 2, reset: bool = True) -> list[JaccardResult]:
        """Estimate coefficients for every tracked tag combination.

        Mirrors :meth:`repro.core.jaccard.JaccardCalculator.report`: one
        result per tracked combination of at least ``min_size`` tags, and —
        with ``reset`` — all sketches are dropped afterwards, exactly like a
        Calculator deleting its counters after a report round.
        """
        results: list[JaccardResult] = []
        signatures = self._signatures
        for key in self._keys:
            if len(key) < min_size:
                continue
            tag_signatures = [signatures[tag] for tag in key if tag in signatures]
            if len(tag_signatures) != len(key):
                continue
            # A zero estimate is still reported: the tagset demonstrably
            # co-occurred (it is tracked), and dropping it would deflate
            # coverage and hide the estimator's hardest (low-J) errors.
            estimate = MinHash.jaccard_multiway(tag_signatures)
            results.append(
                JaccardResult(
                    tagset=frozenset(key),
                    jaccard=estimate,
                    support=self._support.estimate(key),
                )
            )
        if reset:
            self.clear()
        return results

    def clear(self) -> None:
        """Drop all sketches (after a report round, like the exact counters)."""
        self._signatures.clear()
        self._keys.clear()
        self._support = CountMinSketch(
            epsilon=self._countmin_epsilon, delta=self._countmin_delta
        )
        self._observations = 0

    def __len__(self) -> int:
        return len(self._keys)
