"""Probabilistic sketches used as related-work baselines (paper Section 2)."""

from .bloom import BloomFilter, optimal_parameters
from .countmin import CountMinSketch
from .minhash import (
    MinHash,
    MinHashLSH,
    candidate_probability,
    estimate_pairwise_jaccard,
)

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "MinHash",
    "MinHashLSH",
    "candidate_probability",
    "estimate_pairwise_jaccard",
    "optimal_parameters",
]
