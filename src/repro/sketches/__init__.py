"""Probabilistic sketches: related-work baselines and the approximate mode.

The paper (Section 2) argues that probabilistic set representations are a
poor fit for *exact* correlation tracking because their false positives make
disjoint tags look co-occurring.  This package both quantifies that argument
(see ``benchmarks/test_sketch_baseline.py``) and embraces its flip side: the
sketches power the system's **approximate tracking mode**, where speed and
bounded memory are traded for a quantified estimation error
(``SystemConfig(calculator="sketch")``).

Contents
--------
:class:`MinHash` / :class:`MinHashLSH`
    Jaccard-preserving signatures and a banded LSH index.  Besides the
    classic pairwise estimate, :meth:`MinHash.jaccard_multiway` estimates
    the paper's multi-way coefficient ``|⋂ T_t| / |⋃ T_t|`` directly from
    per-tag signatures — the sketch-mode replacement for Equation (2)'s
    inclusion–exclusion.
:class:`CountMinSketch`
    Approximate frequency counts with an additive over-estimate bound; the
    sketch mode uses it for the support counts ``CN(s_i)``.
:class:`BloomFilter`
    Approximate set membership (related-work baseline only).
:class:`SketchJaccardEstimator`
    The drop-in replacement for the exact
    :class:`~repro.core.jaccard.JaccardCalculator` used by
    :class:`~repro.operators.SketchCalculatorBolt`.

Examples
--------
Estimate a pairwise Jaccard coefficient from signatures::

    >>> from repro.sketches import MinHash
    >>> left = MinHash.from_items(range(0, 150), num_perm=256)
    >>> right = MinHash.from_items(range(50, 200), num_perm=256)
    >>> abs(left.jaccard(right) - 0.5) < 0.15   # true J = 100/200
    True

Count tag-pair frequencies in bounded memory::

    >>> from repro.sketches import CountMinSketch
    >>> sketch = CountMinSketch(epsilon=0.01, delta=0.01)
    >>> for _ in range(42):
    ...     sketch.add(("beer", "munich"))
    >>> sketch.estimate(("beer", "munich")) >= 42  # never under-estimates
    True

Run the full approximate tracking pipeline::

    from repro import SystemConfig, TagCorrelationSystem
    config = SystemConfig.scaled_down("DS", calculator="sketch")
    report = TagCorrelationSystem(config).run(documents)
    print(report.jaccard_mean_error, report.sketch_stats)
"""

from .bloom import BloomFilter, optimal_parameters
from .countmin import CountMinSketch
from .estimator import SketchJaccardEstimator
from .minhash import (
    MinHash,
    MinHashLSH,
    candidate_probability,
    estimate_pairwise_jaccard,
)

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "MinHash",
    "MinHashLSH",
    "SketchJaccardEstimator",
    "candidate_probability",
    "estimate_pairwise_jaccard",
    "optimal_parameters",
]
