"""Command-line interface of the reproduction.

Provides the handful of workflows a user needs without writing Python:

* ``repro generate`` — write a synthetic Twitter-like trace to a JSONL file,
* ``repro record`` — record a scenario workload (``--scenario trending/
  burst/diurnal/adversarial``) as a replayable repro-trace file,
* ``repro run`` — run the distributed tag-correlation system over a trace
  (or a freshly generated one) and print the run report.  ``--calculator
  sketch`` switches the Calculators to the MinHash/Count-Min approximate
  tracking mode; ``--reporting-engine`` picks the exact-mode union
  computation (``incremental``/``scratch``, identical coefficients);
  ``--subset-cache`` sizes the Calculators' subset-enumeration LRU;
  ``--no-baseline`` skips the centralized ground truth (measurement runs
  that need no error metrics); ``--batch-size`` controls the Disseminator's
  notification micro-batches (``1`` disables batching); ``--executor
  process`` shards the Calculator/Tracker layer across ``--workers``
  multiprocessing workers (identical logical metrics, see
  docs/PERFORMANCE.md); ``--counter-store spill`` keeps the window
  counters out of core in sorted on-disk run files merged at report time
  (bit-identical coefficients, flat RSS; ``--spill-dir`` /
  ``--spill-threshold`` tune it, see docs/ARCHITECTURE.md "Counter
  store"); ``--tracker-store spill`` spills the Tracker's dedup
  coefficient table the same way and ``--report-chunk`` bounds the
  reporting path's emission/drain batches,
* ``repro compare`` — run several partitioning algorithms over the same
  trace and print the evaluation metrics side by side,
* ``repro connectivity`` — the Figure-7 connectivity analysis of a trace,
* ``repro theory`` — print the Section-5 analytic tables,
* ``repro serve`` — start the always-on service daemon: a long-lived
  process owning the cluster, ingesting document batches over a TCP or
  Unix socket and answering concurrent queries between rounds (see
  docs/ARCHITECTURE.md "Service mode"),
* ``repro client`` — talk to a running daemon: ``ping``, ``ingest`` a
  JSONL file, ``top-k`` / ``coefficient`` / ``tracked`` / ``stats``
  queries, ``track`` standing tagsets, and graceful ``shutdown``.

Invoke as ``python -m repro.cli <command> ...`` (or wire the ``repro``
entry point in your environment); ``--help`` on the top level and on every
subcommand documents the options, and the top-level epilog carries
copy-paste examples.

Examples::

    python -m repro.cli run --documents 8000 --k 8 --algorithm DS
    python -m repro.cli run --documents 8000 --calculator sketch
    python -m repro.cli run --documents 8000 --executor process --workers 4
    python -m repro.cli run --documents 8000 --scenario trending --reporting-engine delta
    python -m repro.cli run --documents 50000 --counter-store spill --no-baseline
    python -m repro.cli record --documents 6000 --scenario burst --output burst.trace.jsonl
    python -m repro.cli run --trace burst.trace.jsonl
    python -m repro.cli compare --documents 6000 --algorithms DS,SCL
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.connectivity import connectivity_by_window_size
from .core.documents import Document
from .core.jaccard import DEFAULT_SUBSET_CACHE_SIZE, REPORTING_ENGINES
from .operators.controller import REPARTITION_POLICIES
from .pipeline import RunReport, SystemConfig, TagCorrelationSystem
from .store import COUNTER_STORES, DEFAULT_SPILL_THRESHOLD, TRACKER_STORES
from .streamsim import EXECUTOR_NAMES
from .theory import WindowModel, communication_sweep, paper_np_table
from .workloads import (
    SCENARIO_NAMES,
    WorkloadConfig,
    load_documents,
    load_trace,
    make_generator,
    scenario_preset,
    write_documents,
    write_trace,
)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--documents", type=int, default=8000,
                        help="number of documents to generate (default 8000)")
    parser.add_argument("--tps", type=float, default=50.0,
                        help="tweets per second of the simulated stream")
    parser.add_argument("--topics", type=int, default=200,
                        help="number of topics in the synthetic workload")
    parser.add_argument("--tags-per-topic", type=int, default=18)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scenario", choices=SCENARIO_NAMES, default="legacy",
                        help="workload scenario preset: legacy (the original "
                             "churny synthetic point), trending (persistent "
                             "topics with rise/plateau/decay trends — the "
                             "delta engine's carry-friendly shape), burst "
                             "(flash-crowd spikes), diurnal (sinusoidal "
                             "rate + topic-mix cycle) or adversarial "
                             "(worst-case type churn for the carry table); "
                             "see docs/ARCHITECTURE.md \"Workload "
                             "scenarios\"")


def _add_system_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--algorithm", default="DS",
                        help="partitioning algorithm (DS, SCC, SCL, SCI, ...)")
    parser.add_argument("--k", type=int, default=10, help="number of Calculators")
    parser.add_argument("--partitioners", type=int, default=10,
                        help="number of Partitioner instances")
    parser.add_argument("--threshold", "--repartition-threshold",
                        dest="threshold", type=float, default=0.5,
                        help="repartition threshold thr")
    parser.add_argument("--repartition-policy", choices=REPARTITION_POLICIES,
                        default="threshold",
                        help="when the Disseminator requests a full swap: "
                             "threshold (the paper's either-or quality "
                             "rule, the default), capacity (combined "
                             "per-document update cost of the capacity "
                             "model degraded by thr), fixed (swap at the "
                             "--repartition-at document counts) or never "
                             "(Single Additions only)")
    parser.add_argument("--repartition-at", default="",
                        help="comma-separated document counts at which the "
                             "fixed policy forces a swap, e.g. 2000,5000")
    parser.add_argument("--repartition-handoff", choices=("none", "migrate"),
                        default="none",
                        help="Calculator state on a mid-stream swap: none "
                             "(install immediately, keep counters) or "
                             "migrate (coordinated quiesce -> drain "
                             "counters to the Tracker -> install)")
    parser.add_argument("--window", type=int, default=1500,
                        help="partitioning window size in documents")
    parser.add_argument("--bootstrap", type=int, default=600,
                        help="documents observed before the first partitioning")
    parser.add_argument("--calculator", choices=("exact", "sketch"), default="exact",
                        help="Calculator mode: exact subset counters or the "
                             "MinHash/Count-Min approximate tracking mode")
    parser.add_argument("--reporting-engine", choices=REPORTING_ENGINES,
                        default="incremental",
                        help="union computation of exact-mode report rounds: "
                             "incremental (one subset-lattice fold per "
                             "distinct tagset type, the default), delta "
                             "(cross-round: fold only changed types, carry "
                             "clean recurring ones) or scratch (the "
                             "original per-key counter re-walk); all three "
                             "report identical coefficients — see the "
                             "decision table in docs/ARCHITECTURE.md "
                             "\"Reporting path\"")
    parser.add_argument("--subset-cache", type=int, default=DEFAULT_SUBSET_CACHE_SIZE,
                        help="capacity of each exact Calculator's LRU cache "
                             "of tagset subset enumerations (default "
                             f"{DEFAULT_SUBSET_CACHE_SIZE})")
    parser.add_argument("--counter-store", choices=COUNTER_STORES,
                        default="dict",
                        help="backing table of exact Calculators: dict "
                             "(all-RAM, the default) or spill (freeze cold "
                             "counter segments to sorted on-disk run files "
                             "and k-way-merge them at report time — bounded "
                             "resident memory, identical coefficients; see "
                             "docs/ARCHITECTURE.md \"Counter store\")")
    parser.add_argument("--spill-dir", default=None,
                        help="root directory for spilled run files "
                             "(default: the system temp dir); each "
                             "Calculator gets a private subdirectory")
    parser.add_argument("--spill-threshold", type=int,
                        default=DEFAULT_SPILL_THRESHOLD,
                        help="distinct hot keys per Calculator at which a "
                             "counter segment is frozen to disk (default "
                             f"{DEFAULT_SPILL_THRESHOLD})")
    parser.add_argument("--tracker-store", choices=TRACKER_STORES,
                        default="dict",
                        help="backing table of the Tracker's dedup "
                             "coefficients: dict (all-RAM, the default) or "
                             "spill (freeze cold coefficient segments to "
                             "sorted run files and answer queries from a "
                             "merged view — bounded resident memory, "
                             "identical coefficients; see "
                             "docs/ARCHITECTURE.md \"Counter store\")")
    parser.add_argument("--tracker-spill-threshold", type=int, default=None,
                        help="resident coefficient entries at which the "
                             "Tracker's hot segment is frozen to disk "
                             "(default: the --spill-threshold value)")
    parser.add_argument("--report-chunk", type=int, default=0,
                        help="coefficient triples per report emission and "
                             "per end-of-run drain message: bounds the "
                             "reporting path's peak batch/pickle size "
                             "(0 = unchunked, the default; identical "
                             "metrics either way)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the centralized exact baseline entirely "
                             "(no ground truth, no error metrics; the "
                             "baseline bolt is never constructed)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="routed tagsets per notification micro-batch "
                             "(1 = one message per routed tagset)")
    parser.add_argument("--link-batch", type=int, default=0,
                        help="messages per routed link batch of the "
                             "substrate (0 = unlimited, 1 = per-message "
                             "delivery; physical only, identical metrics)")
    parser.add_argument("--minhash-perms", type=int, default=512,
                        help="MinHash signature width of the sketch mode "
                             "(estimate stddev is about 1/sqrt of this)")
    parser.add_argument("--executor", choices=EXECUTOR_NAMES, default="inline",
                        help="execution engine: inline (single-process "
                             "depth-first loop) or process (Calculator/"
                             "Tracker layer sharded over worker processes)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes of the process executor "
                             "(0 = one per CPU core, capped at 4)")


def _workload_config_from_args(args: argparse.Namespace) -> WorkloadConfig:
    # Explicit CLI knobs override the scenario preset's values; the
    # shape-critical preset fields (topic churn, intra-topic mix, ...)
    # have no CLI flag and always come from the preset.
    return scenario_preset(
        getattr(args, "scenario", "legacy"),
        tweets_per_second=args.tps,
        n_topics=args.topics,
        tags_per_topic=args.tags_per_topic,
        seed=args.seed,
    )


def _workload_from_args(args: argparse.Namespace) -> list[Document]:
    config = _workload_config_from_args(args)
    return make_generator(config).generate(args.documents)


def _repartition_points(raw: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(
            f"--repartition-at expects comma-separated integers, got {raw!r}"
        ) from None


def _system_config_from_args(args: argparse.Namespace, algorithm: str | None = None) -> SystemConfig:
    return SystemConfig(
        algorithm=algorithm or args.algorithm,
        k=args.k,
        n_partitioners=args.partitioners,
        repartition_threshold=args.threshold,
        repartition_policy=getattr(args, "repartition_policy", "threshold"),
        repartition_at=_repartition_points(getattr(args, "repartition_at", "")),
        repartition_handoff=getattr(args, "repartition_handoff", "none"),
        window_mode="count",
        window_size=args.window,
        bootstrap_documents=args.bootstrap,
        quality_check_interval=max(50, args.window // 6),
        report_interval_seconds=60.0,
        calculator=getattr(args, "calculator", "exact"),
        reporting_engine=getattr(args, "reporting_engine", "incremental"),
        subset_cache_size=getattr(args, "subset_cache", DEFAULT_SUBSET_CACHE_SIZE),
        counter_store=getattr(args, "counter_store", "dict"),
        spill_dir=getattr(args, "spill_dir", None),
        spill_threshold=getattr(args, "spill_threshold", DEFAULT_SPILL_THRESHOLD),
        tracker_store=getattr(args, "tracker_store", "dict"),
        tracker_spill_threshold=getattr(args, "tracker_spill_threshold", None),
        report_chunk_size=getattr(args, "report_chunk", 0),
        include_centralized_baseline=not getattr(args, "no_baseline", False),
        notification_batch_size=getattr(args, "batch_size", 64),
        link_batch_size=getattr(args, "link_batch", 0),
        minhash_permutations=getattr(args, "minhash_perms", 512),
        executor=getattr(args, "executor", "inline"),
        workers=getattr(args, "workers", 0),
    )


def _load_or_generate(args: argparse.Namespace) -> tuple[list[Document], str | None]:
    """The document stream plus its scenario provenance (None = unknown).

    ``--trace`` replays a recorded trace file (scenario read from the
    header), ``--input`` loads a plain tweet file (unknown provenance),
    otherwise the stream is generated live from the workload arguments.
    """
    if getattr(args, "trace", None):
        header, documents = load_trace(args.trace)
        scenario = header.get("scenario")
        return documents, scenario if scenario in SCENARIO_NAMES else None
    if getattr(args, "input", None):
        return load_documents(args.input), None
    return _workload_from_args(args), getattr(args, "scenario", "legacy")


def _print_report(report: RunReport) -> None:
    print(f"algorithm                 : {report.algorithm}")
    if report.workload_scenario is not None:
        print(f"workload scenario         : {report.workload_scenario}")
    print(f"calculator mode           : {report.calculator_mode}")
    if report.calculator_mode == "exact":
        print(f"reporting engine          : {report.reporting_engine}")
        if report.subset_cache_stats is not None:
            stats = report.subset_cache_stats
            lookups = stats["hits"] + stats["misses"]
            hit_rate = stats["hits"] / lookups if lookups else 0.0
            print(f"subset cache              : {hit_rate:.1%} hit rate "
                  f"({stats['hits']} hits, {stats['misses']} misses, "
                  f"{stats['evictions']} evictions)")
            if report.reporting_engine == "delta":
                print(f"delta carry table         : {stats['carry_hits']} hits, "
                      f"{stats['carry_misses']} misses, "
                      f"{stats['carry_invalidations']} invalidations, "
                      f"{stats['carry_evictions']} evictions")
    if report.counter_store != "dict":
        print(f"counter store             : {report.counter_store}")
        if report.store_stats is not None:
            stats = report.store_stats
            lookups = stats["block_cache_hits"] + stats["block_cache_misses"]
            hit_rate = stats["block_cache_hits"] / lookups if lookups else 0.0
            print(f"spill store               : "
                  f"{int(stats['runs_written'])} runs written "
                  f"({stats['run_bytes_written'] / 1e6:.1f} MB), "
                  f"{int(stats['merges'])} merges "
                  f"({int(stats['parallel_merges'])} parallel, "
                  f"{stats['merge_seconds']:.2f} s)")
            print(f"block cache               : {hit_rate:.1%} hit rate "
                  f"({int(stats['block_cache_hits'])} hits, "
                  f"{int(stats['block_cache_misses'])} misses, "
                  f"{int(stats['block_cache_evictions'])} evictions)")
            if stats.get("carry_blobs_written"):
                print(f"carry log                 : "
                      f"{int(stats['carry_blobs_written'])} blobs "
                      f"({stats['carry_bytes_written'] / 1e6:.1f} MB), "
                      f"{int(stats['carry_compactions'])} compactions")
    if report.tracker_store != "dict":
        print(f"tracker store             : {report.tracker_store}")
        if report.tracker_store_stats is not None:
            stats = report.tracker_store_stats
            lookups = stats["block_cache_hits"] + stats["block_cache_misses"]
            hit_rate = stats["block_cache_hits"] / lookups if lookups else 0.0
            print(f"tracker spill             : "
                  f"{int(stats['runs_written'])} runs written "
                  f"({stats['run_bytes_written'] / 1e6:.1f} MB), "
                  f"{int(stats['merges'])} merges "
                  f"({stats['merge_seconds']:.2f} s), "
                  f"{int(stats['membership_probes'])} membership probes")
            print(f"tracker residency         : "
                  f"{int(stats['hot_entries'])} hot entries, "
                  f"{int(stats['runs_live'])} live runs, "
                  f"{hit_rate:.1%} block-cache hit rate")
    print(f"execution engine          : {report.executor_mode}"
          + (f" ({report.executor_workers} workers)"
             if report.executor_mode == "process" else ""))
    print(f"documents processed       : {report.documents_processed}")
    print(f"tagged documents          : {report.tagged_documents}")
    print(f"average communication     : {report.communication_avg:.3f}")
    print(f"notification messages     : {report.notification_messages}")
    print(f"batch amortization        : {report.batch_amortization:.2f}x")
    print(f"load Gini coefficient     : {report.load_gini:.3f}")
    print(f"max Calculator load share : {report.load_max_share:.3f}")
    print(f"repartitions              : {report.n_repartitions} {report.repartition_reasons}")
    if report.migration_stats is not None:
        stats = report.migration_stats
        print(f"state migrations          : {int(stats['handoffs'])} handoffs "
              f"({int(stats['aborted'])} aborted), "
              f"{int(stats['migrated_triples'])} triples migrated, "
              f"{stats['stall_seconds']*1000:.1f} ms stalled")
    for failure in report.migration_failures:
        print(f"migration failure         : {failure.splitlines()[0]}")
    print(f"single additions          : {report.single_additions_applied}")
    print(f"coefficients reported     : {report.coefficients_reported}")
    if report.jaccard is not None:
        print(f"jaccard coverage          : {report.jaccard_coverage:.3f}")
        print(f"jaccard mean error        : {report.jaccard_mean_error:.4f}")
    if report.sketch_stats is not None:
        stats = report.sketch_stats
        print(f"minhash permutations      : {int(stats['minhash_permutations'])}")
        print(f"estimate stddev bound     : {stats['estimate_stddev_bound']:.4f}")
        print(f"tracked tagset keys       : {int(stats['tracked_tagsets'])}")


# --------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------- #
def cmd_generate(args: argparse.Namespace) -> int:
    documents = _workload_from_args(args)
    written = write_documents(documents, args.output)
    print(f"wrote {written} documents to {args.output}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    config = _workload_config_from_args(args)
    documents = make_generator(config).generate(args.documents)
    written = write_trace(documents, args.output, config)
    print(f"recorded {written} {config.scenario} documents to {args.output}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    documents, scenario = _load_or_generate(args)
    config = _system_config_from_args(args).with_overrides(scenario=scenario)
    report = TagCorrelationSystem(config).run(documents)
    _print_report(report)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    documents, scenario = _load_or_generate(args)
    algorithms = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    print(f"{'algorithm':>10} {'comm':>8} {'gini':>8} {'maxload':>9} "
          f"{'repart':>8} {'error':>8} {'coverage':>10}")
    for algorithm in algorithms:
        config = _system_config_from_args(args, algorithm=algorithm)
        config = config.with_overrides(scenario=scenario)
        report = TagCorrelationSystem(config).run(documents)
        print(
            f"{algorithm:>10} {report.communication_avg:>8.3f} {report.load_gini:>8.3f} "
            f"{report.load_max_share:>9.3f} {report.n_repartitions:>8} "
            f"{report.jaccard_mean_error:>8.4f} {report.jaccard_coverage:>10.3f}"
        )
    return 0


def cmd_connectivity(args: argparse.Namespace) -> int:
    documents, _ = _load_or_generate(args)
    window_minutes = [float(value) for value in args.windows.split(",")]
    reports = connectivity_by_window_size(documents, window_minutes)
    print(f"{'window (min)':>14} {'max tags %':>12} {'max load %':>12} {'#components':>14}")
    for minutes in window_minutes:
        report = reports[minutes]
        print(
            f"{minutes:>14} {report.max_tag_percentage():>12.1f} "
            f"{report.max_load_percentage():>12.1f} {report.mean_components():>14.1f}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceDaemon

    config = _system_config_from_args(args).with_overrides(
        executor="service", service_queue_limit=args.queue_limit
    )
    daemon = ServiceDaemon(
        config,
        host=args.host,
        port=args.port,
        socket_path=args.socket or None,
    ).start()
    address = daemon.address
    if isinstance(address, tuple):
        print(f"serving on {address[0]}:{address[1]}", flush=True)
    else:
        print(f"serving on unix socket {address}", flush=True)
    try:
        # Run until a client's shutdown request drains the cluster.
        while not daemon.wait_for_shutdown(timeout=0.5):
            pass
    except KeyboardInterrupt:
        print("interrupted; draining...", flush=True)
        daemon.executor.request_drain()
    finally:
        daemon.close()
    report = daemon.final_report
    if report is not None:
        print()
        _print_report(report)
    return 0


def _client_from_args(args: argparse.Namespace):
    from .service import ServiceClient

    if args.socket:
        return ServiceClient(socket_path=args.socket)
    return ServiceClient(host=args.host, port=args.port)


def _parse_tags(raw: str) -> list[str]:
    tags = [tag.strip() for tag in raw.split(",") if tag.strip()]
    if not tags:
        raise SystemExit("--tags expects a comma-separated tag list")
    return tags


def cmd_client(args: argparse.Namespace) -> int:
    from .service import ServiceError

    try:
        client = _client_from_args(args)
    except (ConnectionError, OSError) as exc:
        print(f"cannot connect to the service: {exc}", file=sys.stderr)
        return 1
    try:
        op = args.operation
        if op == "ping":
            response = client.ping()
        elif op == "ingest":
            if not args.input:
                raise SystemExit("ingest requires --input <jsonl file>")
            documents = load_documents(args.input)
            total = 0
            for start in range(0, len(documents), args.ingest_batch):
                response = client.ingest(
                    documents[start : start + args.ingest_batch], block=True
                )
                total += response["accepted"]
            print(f"ingested {total} documents "
                  f"({response['pending_batches']} batches pending)")
            return 0
        elif op == "top-k":
            response = client.top_k(k=args.k, min_support=args.min_support)
            print(f"round {response['round']}:")
            for tags, jaccard, support in response["results"]:
                print(f"  {','.join(tags):<40} jaccard={jaccard:.4f} "
                      f"support={support}")
            return 0
        elif op == "coefficient":
            response = client.coefficient(_parse_tags(args.tags or ""))
        elif op == "tracked":
            response = client.tracked()
        elif op == "stats":
            response = client.stats()
        elif op == "track":
            response = client.track([_parse_tags(args.tags or "")])
        else:  # shutdown
            response = client.shutdown()
        print(response)
        return 0
    except ServiceError as exc:
        print(f"service error [{exc.code}]: {exc.message}", file=sys.stderr)
        return 1
    finally:
        client.close()


def cmd_theory(args: argparse.Namespace) -> int:
    print("Section 5.1 - Erdos-Renyi n*p of the tag co-occurrence graph")
    for (window, mmax), np_value in paper_np_table().items():
        model = WindowModel(window_minutes=window, mmax=mmax)
        print(f"  window={window:>2} min, mmax={mmax}: np={np_value:.2f} "
              f"(giant component: {model.predicts_giant_component()})")
    print()
    print("Section 5.2 - expected communication of random equal partitions")
    vocabularies = [20, 100, 1000, 10_000, 100_000, 600_000]
    sweep = communication_sweep(vocabularies, args.tweets, args.k, args.tags_per_tweet)
    for vocabulary in vocabularies:
        print(f"  vocabulary={vocabulary:>7}: E[communication]={sweep[vocabulary]:.3f}")
    return 0


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
_EPILOG = """\
subcommands:
  generate      write a synthetic Twitter-like trace to a JSONL file
  record        record a scenario run as a replayable repro-trace file
                (header with scenario + workload config, then document
                records; replay with run/compare --trace)
  run           run the distributed tag-correlation system over a trace
                (use --calculator sketch for the approximate tracking mode,
                --reporting-engine scratch to fall back to the original
                report path, --subset-cache to size the Calculators'
                subset-enumeration LRU, --no-baseline to skip the
                centralized ground truth, --batch-size to tune the
                notification micro-batches, --link-batch to cap the
                substrate's per-link batches (1 = per-message delivery),
                --executor process --workers N to shard the
                Calculator/Tracker layer over worker processes,
                --counter-store spill to keep window counters out of
                core in sorted on-disk run files)
  compare       run several partitioning algorithms over the same trace and
                print the evaluation metrics side by side
  connectivity  Figure-7 connectivity analysis of a trace
  theory        print the Section-5 analytic tables
  serve         start the always-on service daemon (socket ingest API +
                concurrent queries; runs until a client sends shutdown)
  client        talk to a running daemon: ping, ingest, top-k, coefficient,
                tracked, stats, track, shutdown

examples:
  # Generate a 10k-document trace, then replay it through the system:
  python -m repro.cli generate --documents 10000 --output trace.jsonl
  python -m repro.cli run --input trace.jsonl --algorithm DS --k 10

  # Approximate tracking mode with batched notifications:
  python -m repro.cli run --documents 8000 --calculator sketch --batch-size 64

  # Shard the Calculator/Tracker layer over 4 worker processes:
  python -m repro.cli run --documents 8000 --executor process --workers 4

  # Fastest exact-mode measurement run: incremental reporting engine
  # (default) without the centralized baseline:
  python -m repro.cli run --documents 8000 --no-baseline

  # Cross-round delta reporting engine (cheapest in-stream report rounds;
  # scratch / incremental / delta decision table: docs/ARCHITECTURE.md
  # "Reporting path"):
  python -m repro.cli run --documents 8000 --reporting-engine delta

  # Pin the original reporting path (for equivalence checks):
  python -m repro.cli run --documents 8000 --reporting-engine scratch

  # Live repartitioning with state migration: force swaps at two points
  # and drain the Calculators' counters through a coordinated handoff
  # (quiesce -> migrate -> install; see docs/ARCHITECTURE.md "Live
  # repartitioning"):
  python -m repro.cli run --documents 8000 --repartition-policy fixed \\
      --repartition-at 3000,6000 --repartition-handoff migrate

  # Capacity-model repartition policy (trigger on the combined
  # per-document update cost instead of the either-or quality rule):
  python -m repro.cli run --documents 8000 --repartition-policy capacity

  # Trending workload scenario (persistent rise/plateau/decay trends):
  # the delta engine's carry table finally sees recurring clean types --
  # watch the "delta carry table" hits in the report:
  python -m repro.cli run --documents 8000 --scenario trending \\
      --reporting-engine delta

  # Adversarial churn (worst case for the carry table) under live
  # repartitioning:
  python -m repro.cli run --documents 8000 --scenario adversarial \\
      --repartition-handoff migrate

  # Out-of-core window state: spill cold counter segments to sorted run
  # files on disk and k-way-merge them at report time (bit-identical to
  # the default in-RAM dict store; see docs/ARCHITECTURE.md "Counter
  # store"). Keeps driver RSS flat on windows far larger than RAM:
  python -m repro.cli run --documents 50000 --counter-store spill \\
      --spill-dir /tmp/repro-spill --no-baseline

  # Out-of-core Tracker: the dedup coefficient table spills too, and the
  # reporting path streams in bounded chunks end-to-end (identical
  # coefficients; the max-support dedup rule becomes the merge combiner):
  python -m repro.cli run --documents 50000 --counter-store spill \\
      --tracker-store spill --report-chunk 4096 --no-baseline

  # Record a burst-scenario trace, then replay it bit-for-bit:
  python -m repro.cli record --documents 6000 --scenario burst \\
      --output burst.trace.jsonl
  python -m repro.cli run --trace burst.trace.jsonl --k 8

  # Paper-style algorithm comparison (Figures 3-6):
  python -m repro.cli compare --documents 8000 --algorithms DS,SCI,SCC,SCL

  # Always-on service mode: start the daemon, ingest a trace through the
  # socket API, query it, then drain to a final report (batch==served,
  # pinned by tests/pipeline/test_service_equivalence.py):
  python -m repro.cli serve --port 7341 --k 8 &
  python -m repro.cli generate --documents 5000 --output feed.jsonl
  python -m repro.cli client --port 7341 ingest --input feed.jsonl
  python -m repro.cli client --port 7341 top-k --k 10
  python -m repro.cli client --port 7341 stats
  python -m repro.cli client --port 7341 shutdown

Use "python -m repro.cli <subcommand> --help" for per-command options.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tracking Set Correlations at Large Scale - reproduction CLI",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic trace")
    _add_workload_arguments(generate)
    generate.add_argument("--output", required=True, help="output JSONL file")
    generate.set_defaults(handler=cmd_generate)

    record = subparsers.add_parser(
        "record", help="record a scenario run as a replayable trace file"
    )
    _add_workload_arguments(record)
    record.add_argument("--output", required=True,
                        help="output trace file (repro-trace JSONL: header "
                             "line with scenario + workload config, then "
                             "one document record per line)")
    record.set_defaults(handler=cmd_record)

    run = subparsers.add_parser("run", help="run the distributed system")
    _add_workload_arguments(run)
    _add_system_arguments(run)
    run.add_argument("--input", help="plain JSONL tweet file to replay "
                                     "(otherwise generate)")
    run.add_argument("--trace", help="repro-trace file to replay (recorded "
                                     "with `repro record`; scenario "
                                     "provenance is read from the header)")
    run.set_defaults(handler=cmd_run)

    compare = subparsers.add_parser("compare", help="compare algorithms on one trace")
    _add_workload_arguments(compare)
    _add_system_arguments(compare)
    compare.add_argument("--input", help="plain JSONL tweet file to replay "
                                         "(otherwise generate)")
    compare.add_argument("--trace", help="repro-trace file to replay "
                                         "(recorded with `repro record`)")
    compare.add_argument(
        "--algorithms", default="DS,SCI,SCC,SCL", help="comma-separated algorithm names"
    )
    compare.set_defaults(handler=cmd_compare)

    connectivity = subparsers.add_parser(
        "connectivity", help="Figure-7 connectivity analysis of a trace"
    )
    _add_workload_arguments(connectivity)
    connectivity.add_argument("--input", help="JSONL trace (otherwise generate)")
    connectivity.add_argument(
        "--windows", default="2,5,10,20", help="comma-separated window sizes in minutes"
    )
    connectivity.set_defaults(handler=cmd_connectivity)

    serve = subparsers.add_parser(
        "serve", help="start the always-on service daemon"
    )
    _add_system_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument("--port", type=int, default=7341,
                       help="TCP bind port (0 = pick a free port)")
    serve.add_argument("--socket", default="",
                       help="serve on this Unix socket path instead of TCP")
    serve.add_argument("--queue-limit", type=int, default=8,
                       help="bounded ingest queue depth in batches; a full "
                            "queue refuses non-blocking ingest with a "
                            "backpressure error (default 8)")
    serve.set_defaults(handler=cmd_serve, executor="service")

    client = subparsers.add_parser(
        "client", help="talk to a running service daemon"
    )
    client.add_argument("operation",
                        choices=("ping", "ingest", "top-k", "coefficient",
                                 "tracked", "stats", "track", "shutdown"),
                        help="operation to perform against the daemon")
    client.add_argument("--host", default="127.0.0.1", help="daemon TCP host")
    client.add_argument("--port", type=int, default=7341, help="daemon TCP port")
    client.add_argument("--socket", default="",
                        help="connect to this Unix socket path instead of TCP")
    client.add_argument("--input", help="JSONL tweet file to ingest")
    client.add_argument("--ingest-batch", type=int, default=500,
                        help="documents per ingest request (default 500)")
    client.add_argument("--k", type=int, default=10, help="top-k size")
    client.add_argument("--min-support", type=int, default=0,
                        help="minimum support of top-k results")
    client.add_argument("--tags", default="",
                        help="comma-separated tagset for coefficient/track")
    client.set_defaults(handler=cmd_client)

    theory = subparsers.add_parser("theory", help="print the Section-5 analytic tables")
    theory.add_argument("--tweets", type=int, default=10_000)
    theory.add_argument("--k", type=int, default=10)
    theory.add_argument("--tags-per-tweet", type=int, default=3)
    theory.set_defaults(handler=cmd_theory)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
