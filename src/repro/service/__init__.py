"""Always-on service mode: daemon, client and the JSON-lines protocol.

The long-lived serving surface over :class:`~repro.pipeline.system.TagCorrelationSystem`:
a :class:`ServiceDaemon` owns one cluster driven by the single-writer
:class:`~repro.streamsim.executors.AsyncServiceExecutor`, accepts document
batches over a socket ingest API with bounded backpressure, and answers
concurrent queries (top-k trending, tracked tagsets, per-tagset
coefficients, run stats) against immutable round-consistent Tracker
snapshots.  See docs/ARCHITECTURE.md "Service mode".
"""

from .client import ServiceClient, ServiceError
from .daemon import ServiceDaemon
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    QUERY_KINDS,
    ProtocolError,
)

__all__ = [
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "QUERY_KINDS",
    "ProtocolError",
    "ServiceClient",
    "ServiceDaemon",
    "ServiceError",
]
