"""The always-on service daemon: one cluster, many concurrent clients.

Threading model (the whole design in four lines):

* **One writer.**  A single writer thread runs ``cluster.run()`` under the
  :class:`~repro.streamsim.executors.AsyncServiceExecutor` — it is the only
  thread that ever touches cluster state.
* **Many readers.**  Socket handler threads answer queries against the
  *published snapshot*, an immutable
  :class:`~repro.operators.tracker.TrackerSnapshot` the writer re-publishes
  (plain reference assignment — atomic under the GIL) at every quiescent
  batch boundary.  Readers never see a half-applied round.
* **Bounded hand-off.**  Ingest requests feed the executor's bounded batch
  queue; a full queue surfaces to the client as a pinned ``backpressure``
  error rather than unbounded buffering.
* **Graceful drain.**  ``shutdown`` closes ingest, joins the writer (which
  finishes with the normal end-of-stream flush) and collects the final
  :class:`~repro.pipeline.system.RunReport` — bit-identical to a batch run
  over the same document sequence.

The request dispatcher (:meth:`ServiceDaemon.handle_request`) is pure
dict-in/dict-out, so the fault-injection suite exercises every error path
without sockets; the socket layer only adds framing.
"""

from __future__ import annotations

import contextlib
import os
import socketserver
import threading
import traceback
from collections import deque
from typing import Any

from ..operators import ServiceSpout, TrackerBolt, TrackerSnapshot, streams
from ..pipeline import RunReport, SystemConfig, TagCorrelationSystem
from ..streamsim import AsyncServiceExecutor, IngestBackpressure, IngestClosed
from . import protocol
from .protocol import ProtocolError, error_response, ok_response


class ServiceDaemon:
    """Owns a served :class:`TagCorrelationSystem` cluster and its clients.

    Parameters
    ----------
    config:
        System configuration; ``executor`` is forced to ``"service"``.
    host, port:
        TCP bind address (``port=0`` picks a free port; see :attr:`address`).
    socket_path:
        Bind a Unix domain socket here instead of TCP.
    retain_snapshots:
        Published snapshots kept in a ring buffer (:meth:`retained_snapshots`)
        — the soak suite's consistency oracle.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        retain_snapshots: int = 64,
    ) -> None:
        config = config or SystemConfig()
        if config.executor != "service":
            config = config.with_overrides(executor="service")
        self.system = TagCorrelationSystem(config)
        self._cluster = self.system.build_cluster()
        executor = self._cluster.executor
        assert isinstance(executor, AsyncServiceExecutor)
        self.executor = executor
        self._tracker = next(
            bolt
            for bolt in self._cluster.instances_of(streams.TRACKER)
            if isinstance(bolt, TrackerBolt)
        )
        self._spout = next(
            spout
            for spout in self._cluster.instances_of(streams.SOURCE)
            if isinstance(spout, ServiceSpout)
        )
        executor.on_quiescent = self._publish_snapshot

        self._round = 0
        self._snapshot: TrackerSnapshot = self._tracker.snapshot(0)
        self._snapshots: deque[TrackerSnapshot] = deque(
            [self._snapshot], maxlen=max(1, retain_snapshots)
        )
        self._tracked: set[frozenset[str]] = set()
        self._state_lock = threading.Lock()
        self._shutdown_started = False
        self._shutdown_complete = threading.Event()
        self._final_report: RunReport | None = None
        self._writer_error: str | None = None
        self._writer = threading.Thread(
            target=self._write_loop, name="repro-service-writer", daemon=True
        )

        self._host = host
        self._port = port
        self._socket_path = socket_path
        self._server: socketserver.BaseServer | None = None
        self._server_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServiceDaemon":
        """Start the writer thread and the socket server; returns self."""
        self._writer.start()
        if self._socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._socket_path)
            self._server = _UnixServer(self._socket_path, _Handler, daemon=self)
        else:
            self._server = _TCPServer((self._host, self._port), _Handler, daemon=self)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service-acceptor",
            daemon=True,
        )
        self._server_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int] | str:
        """The bound TCP ``(host, port)`` or the Unix socket path."""
        if self._socket_path is not None:
            return self._socket_path
        assert self._server is not None, "daemon is not started"
        return self._server.server_address[:2]

    def wait_for_shutdown(self, timeout: float | None = None) -> bool:
        """Block until a ``shutdown`` request has fully drained the run."""
        return self._shutdown_complete.wait(timeout=timeout)

    def close(self) -> None:
        """Tear the daemon down (socket server, writer thread, socket file)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._writer.is_alive():
            self.executor.request_drain()
            self._writer.join(timeout=30.0)
        if self._socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._socket_path)

    def __enter__(self) -> "ServiceDaemon":
        return self.start() if self._server is None else self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def final_report(self) -> RunReport | None:
        """The drained run's report (None until shutdown completes)."""
        return self._final_report

    def retained_snapshots(self) -> list[TrackerSnapshot]:
        """The ring buffer of published snapshots (soak-test oracle)."""
        with self._state_lock:
            return list(self._snapshots)

    @property
    def current_round(self) -> int:
        return self._snapshot.round_index

    # ------------------------------------------------------------------ #
    # Writer thread
    # ------------------------------------------------------------------ #
    def _write_loop(self) -> None:
        try:
            self._cluster.run()
        except BaseException:  # noqa: BLE001 - surface on shutdown
            self._writer_error = traceback.format_exc()

    def _publish_snapshot(self) -> None:
        # Writer thread only, at a quiescent point: every document of the
        # finished batch has fully cascaded, so the snapshot is
        # round-consistent.  Publication is one reference assignment.
        self._round += 1
        snapshot = self._tracker.snapshot(self._round)
        self._snapshot = snapshot
        with self._state_lock:
            self._snapshots.append(snapshot)

    # ------------------------------------------------------------------ #
    # Request dispatch (pure; shared by the socket layer and the tests)
    # ------------------------------------------------------------------ #
    def dispatch_line(self, line: bytes) -> dict:
        """Frame-decode one request line and handle it."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            return error_response(exc.code, exc.message)
        return self.handle_request(request)

    def handle_request(self, request: dict) -> dict:
        op = request.get("op")
        if op not in protocol.OPS:
            return error_response(
                protocol.ERROR_UNKNOWN_OP,
                f"unknown op {op!r}; supported: {', '.join(protocol.OPS)}",
            )
        try:
            handler = getattr(self, f"_op_{op}")
            return handler(request)
        except ProtocolError as exc:
            return error_response(exc.code, exc.message)

    def _op_ping(self, request: dict) -> dict:
        return ok_response("ping", round=self._snapshot.round_index)

    def _op_ingest(self, request: dict) -> dict:
        documents = protocol.documents_from_wire(request.get("documents"))
        block = bool(request.get("block", False))
        timeout = request.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise ProtocolError(
                protocol.ERROR_BAD_REQUEST, "timeout must be a positive number"
            )
        try:
            accepted = self.executor.submit(documents, block=block, timeout=timeout)
        except IngestBackpressure as exc:
            return error_response(protocol.ERROR_BACKPRESSURE, str(exc))
        except IngestClosed as exc:
            return error_response(protocol.ERROR_DRAINING, str(exc))
        return ok_response(
            "ingest",
            accepted=accepted,
            pending_batches=self.executor.pending_batches,
        )

    def _op_query(self, request: dict) -> dict:
        what = request.get("what")
        if what not in protocol.QUERY_KINDS:
            raise ProtocolError(
                protocol.ERROR_BAD_REQUEST,
                f"unknown query {what!r}; supported: "
                f"{', '.join(protocol.QUERY_KINDS)}",
            )
        snapshot = self._snapshot  # one read: everything below is consistent
        if what == "top_k":
            k = request.get("k", 10)
            min_support = request.get("min_support", 0)
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise ProtocolError(
                    protocol.ERROR_BAD_REQUEST, "k must be a positive integer"
                )
            if not isinstance(min_support, int) or min_support < 0:
                raise ProtocolError(
                    protocol.ERROR_BAD_REQUEST,
                    "min_support must be a non-negative integer",
                )
            return ok_response(
                "query",
                what=what,
                round=snapshot.round_index,
                results=protocol.tagsets_to_wire(snapshot.top_k(k, min_support)),
            )
        if what == "coefficient":
            tagset = protocol.tagset_from_wire(request.get("tags"))
            pair = snapshot.coefficient(tagset)
            response = ok_response(
                "query",
                what=what,
                round=snapshot.round_index,
                found=pair is not None,
            )
            if pair is not None:
                response["jaccard"], response["support"] = pair
            return response
        if what == "tracked":
            with self._state_lock:
                tracked = sorted(self._tracked, key=lambda t: tuple(sorted(t)))
            rows = []
            for tagset in tracked:
                pair = snapshot.coefficient(tagset)
                if pair is not None:
                    rows.append((tagset, pair[0], pair[1]))
            return ok_response(
                "query",
                what=what,
                round=snapshot.round_index,
                tracked=len(tracked),
                results=protocol.tagsets_to_wire(rows),
            )
        # what == "stats"
        return ok_response(
            "query",
            what=what,
            round=snapshot.round_index,
            coefficients=len(snapshot),
            reports_received=snapshot.reports_received,
            duplicate_reports=snapshot.duplicate_reports,
            documents_ingested=self.executor.documents_accepted,
            batches_ingested=self.executor.batches_accepted,
            pending_batches=self.executor.pending_batches,
            documents_processed=self._spout.emitted,
            draining=self.executor.draining,
        )

    def _op_track(self, request: dict) -> dict:
        raw = request.get("tagsets")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                protocol.ERROR_BAD_REQUEST, "tagsets must be a non-empty list"
            )
        tagsets = [protocol.tagset_from_wire(obj) for obj in raw]
        with self._state_lock:
            self._tracked.update(tagsets)
            total = len(self._tracked)
        return ok_response("track", added=len(tagsets), tracked=total)

    def _op_shutdown(self, request: dict) -> dict:
        with self._state_lock:
            if self._shutdown_started:
                return error_response(
                    protocol.ERROR_SHUTDOWN,
                    "shutdown already in progress (or completed)",
                )
            self._shutdown_started = True
        self.executor.request_drain()
        self._writer.join()
        if self._writer_error is not None:
            self._shutdown_complete.set()
            return error_response(
                protocol.ERROR_BAD_REQUEST,
                f"writer thread failed:\n{self._writer_error}",
            )
        # The end-of-stream flush ran after the last quiescent boundary:
        # publish the post-drain table as the final round.  The writer is
        # gone, so reading the tracker here is single-threaded again.
        self._publish_snapshot()
        report = self.system.collect_report(self._cluster)
        self._final_report = report
        self._shutdown_complete.set()
        return ok_response(
            "shutdown",
            round=self._snapshot.round_index,
            final={
                "documents_processed": report.documents_processed,
                "coefficients_reported": report.coefficients_reported,
                "duplicate_reports": report.duplicate_reports,
                "n_repartitions": report.n_repartitions,
                "communication_avg": report.communication_avg,
                "notification_messages": report.notification_messages,
            },
        )


# --------------------------------------------------------------------- #
# Socket layer
# --------------------------------------------------------------------- #
class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection; many requests per connection.

    A vanished client (EOF, reset, a half-written line) just ends the
    connection — ingest is atomic per request, so a disconnect mid-batch
    leaves no partial state behind.
    """

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        daemon: ServiceDaemon = self.server.daemon  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 2)
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed the connection
            if not line.endswith(b"\n"):
                if len(line) > protocol.MAX_LINE_BYTES:
                    # The line kept going past the cap: refuse and drop the
                    # connection (the rest of the oversize line is garbage).
                    self._reply(
                        error_response(
                            protocol.ERROR_OVERSIZE,
                            f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                        )
                    )
                return  # EOF mid-line: client died mid-request
            response = daemon.dispatch_line(line)
            if not self._reply(response):
                return

    def _reply(self, response: dict) -> bool:
        try:
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], handler: type, daemon: ServiceDaemon):
        self.daemon = daemon
        super().__init__(address, handler)


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True

    def __init__(self, path: str, handler: type, daemon: ServiceDaemon):
        self.daemon = daemon
        super().__init__(path, handler)
