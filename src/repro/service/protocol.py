"""Versioned JSON-lines wire protocol of the always-on service.

One request per line, one response per line, UTF-8 JSON — trivially
debuggable with ``nc`` and trivially framed (``readline``).  Every request
carries the protocol version::

    {"v": 1, "op": "query", "what": "top_k", "k": 5}

and every response either succeeds::

    {"ok": true, "op": "query", "round": 12, ...}

or fails with a *pinned* error code from :data:`ERROR_CODES`::

    {"ok": false, "code": "backpressure", "error": "ingest queue is full..."}

The codes — not the human-readable messages — are the contract the
fault-injection suite pins; see docs/ARCHITECTURE.md "Service mode" for the
full request/response table.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..core.documents import Document

#: Current protocol version; requests carrying any other ``v`` are refused
#: with ``unsupported-version``.
PROTOCOL_VERSION = 1

#: Hard cap on one request line (framing guard: a client that streams an
#: unbounded line is cut off with ``oversize`` instead of buffering it).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Pinned error codes of failure responses.
ERROR_MALFORMED = "malformed"  # not valid JSON / not a JSON object
ERROR_OVERSIZE = "oversize"  # request line exceeds MAX_LINE_BYTES
ERROR_UNSUPPORTED_VERSION = "unsupported-version"
ERROR_UNKNOWN_OP = "unknown-op"
ERROR_BACKPRESSURE = "backpressure"  # bounded ingest queue is full
ERROR_DRAINING = "draining"  # ingest after shutdown started
ERROR_SHUTDOWN = "shutdown"  # duplicate shutdown request
ERROR_BAD_REQUEST = "bad-request"  # structurally valid, semantically not

ERROR_CODES = (
    ERROR_MALFORMED,
    ERROR_OVERSIZE,
    ERROR_UNSUPPORTED_VERSION,
    ERROR_UNKNOWN_OP,
    ERROR_BACKPRESSURE,
    ERROR_DRAINING,
    ERROR_SHUTDOWN,
    ERROR_BAD_REQUEST,
)

#: Request operations.
OPS = ("ping", "ingest", "query", "track", "shutdown")
#: ``query`` flavours.
QUERY_KINDS = ("top_k", "coefficient", "tracked", "stats")


class ProtocolError(Exception):
    """A request that must be refused with a pinned error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES
        super().__init__(message)
        self.code = code
        self.message = message


def encode(payload: dict) -> bytes:
    """One response/request line: compact JSON plus the newline frame."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_request(line: bytes) -> dict:
    """Parse and version-check one request line.

    Raises :class:`ProtocolError` with ``oversize``, ``malformed`` or
    ``unsupported-version`` — the caller turns it into the error response.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            ERROR_OVERSIZE,
            f"request line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        request = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(ERROR_MALFORMED, f"invalid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(ERROR_MALFORMED, "request must be a JSON object")
    version = request.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERROR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} is not supported "
            f"(this daemon speaks v{PROTOCOL_VERSION})",
        )
    return request


def decode_response(line: bytes) -> dict:
    """Parse one response line (client side; responses carry no version)."""
    try:
        response = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(ERROR_MALFORMED, f"invalid JSON: {exc}") from exc
    if not isinstance(response, dict):
        raise ProtocolError(ERROR_MALFORMED, "response must be a JSON object")
    return response


def ok_response(op: str, **payload: Any) -> dict:
    return {"ok": True, "op": op, **payload}


def error_response(code: str, message: str) -> dict:
    assert code in ERROR_CODES
    return {"ok": False, "code": code, "error": message}


# --------------------------------------------------------------------- #
# Document wire form
# --------------------------------------------------------------------- #
def document_to_wire(document: Document) -> dict:
    """A document as its JSON wire object (tags as a sorted list)."""
    return {
        "doc_id": document.doc_id,
        "timestamp": document.timestamp,
        "tags": sorted(document.tags),
        "text": document.text,
    }


def document_from_wire(obj: Any) -> Document:
    """Parse one ingest-request document; ``bad-request`` on any mismatch."""
    if not isinstance(obj, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "each document must be an object")
    try:
        tags = obj["tags"]
        timestamp = obj["timestamp"]
    except KeyError as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"document is missing field {exc.args[0]!r}"
        ) from exc
    if not isinstance(tags, (list, tuple)) or not all(
        isinstance(tag, str) for tag in tags
    ):
        raise ProtocolError(ERROR_BAD_REQUEST, "document tags must be strings")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise ProtocolError(ERROR_BAD_REQUEST, "document timestamp must be a number")
    doc_id = obj.get("doc_id", 0)
    if not isinstance(doc_id, int) or isinstance(doc_id, bool):
        raise ProtocolError(ERROR_BAD_REQUEST, "doc_id must be an integer")
    return Document(
        doc_id=doc_id,
        tags=frozenset(tags),
        timestamp=float(timestamp),
        text=str(obj.get("text", "")),
    )


def documents_from_wire(objs: Any) -> list[Document]:
    if not isinstance(objs, list):
        raise ProtocolError(ERROR_BAD_REQUEST, "documents must be a list")
    return [document_from_wire(obj) for obj in objs]


def tagset_from_wire(obj: Any) -> frozenset[str]:
    if not isinstance(obj, (list, tuple)) or not obj or not all(
        isinstance(tag, str) for tag in obj
    ):
        raise ProtocolError(
            ERROR_BAD_REQUEST, "tags must be a non-empty list of strings"
        )
    return frozenset(obj)


def tagsets_to_wire(
    rows: Iterable[tuple[frozenset[str], float, int]]
) -> list[list[Any]]:
    """``(tagset, jaccard, support)`` rows as JSON-stable triples."""
    return [[sorted(tagset), jaccard, support] for tagset, jaccard, support in rows]
