"""Blocking JSON-lines client of the always-on service daemon.

One socket, many requests: the client keeps its connection open and issues
one request line per call, reading exactly one response line back.  Failure
responses raise :class:`ServiceError` carrying the daemon's pinned error
code, so callers can branch on ``exc.code`` (``"backpressure"``,
``"draining"``, ...) instead of parsing messages.
"""

from __future__ import annotations

import socket
from typing import Any, Iterable, Sequence

from ..core.documents import Document
from . import protocol


class ServiceError(Exception):
    """A failure response from the daemon (``ok: false``)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """Connects to a :class:`~repro.service.daemon.ServiceDaemon`.

    Pass ``host``/``port`` for TCP or ``socket_path`` for a Unix socket —
    both accept whatever :attr:`ServiceDaemon.address` returned.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        socket_path: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("port is required for TCP connections")
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: Any) -> dict:
        """Send one request and return the (successful) response payload.

        Raises :class:`ServiceError` on a failure response and
        :class:`ConnectionError` if the daemon hangs up mid-exchange.
        """
        payload = {"v": protocol.PROTOCOL_VERSION, "op": op, **fields}
        self._sock.sendall(protocol.encode(payload))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = protocol.decode_response(line)
        if not response.get("ok"):
            raise ServiceError(
                response.get("code", "unknown"),
                response.get("error", "unspecified failure"),
            )
        return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request("ping")

    def ingest(
        self,
        documents: Iterable[Document | dict],
        block: bool = False,
        timeout: float | None = None,
    ) -> dict:
        """Submit one document batch; ``backpressure`` errors surface raised.

        ``documents`` may be :class:`Document` objects or already-wire
        dicts.  ``block=True`` waits (up to ``timeout`` seconds) for queue
        space instead of failing fast.
        """
        wire = [
            protocol.document_to_wire(doc) if isinstance(doc, Document) else doc
            for doc in documents
        ]
        fields: dict[str, Any] = {"documents": wire, "block": block}
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request("ingest", **fields)

    def top_k(self, k: int = 10, min_support: int = 0) -> dict:
        """Top-k trending tagsets; ``results`` rows are ``[tags, j, s]``."""
        return self.request("query", what="top_k", k=k, min_support=min_support)

    def coefficient(self, tags: Sequence[str]) -> dict:
        """Current coefficient of one tagset (``found: false`` if untracked)."""
        return self.request("query", what="coefficient", tags=list(tags))

    def tracked(self) -> dict:
        """Current coefficients of every tagset registered via :meth:`track`."""
        return self.request("query", what="tracked")

    def stats(self) -> dict:
        """Run statistics: rounds, ingest counters, queue depth, drain state."""
        return self.request("query", what="stats")

    def track(self, tagsets: Iterable[Sequence[str]]) -> dict:
        """Register tagsets for the ``tracked`` standing query."""
        return self.request("track", tagsets=[list(tags) for tags in tagsets])

    def shutdown(self) -> dict:
        """Drain the run and return the final-report summary."""
        return self.request("shutdown")
