"""Sketches versus exact counters for tag-correlation tracking.

Section 2 of the paper argues that probabilistic sketches (Bloom filters,
Count-Min) are a poor fit for this problem because false positives make
non-co-occurring tags look co-occurring.  This example quantifies the
argument on a synthetic workload, shows the accuracy of the MinHash / LSH
alternative (the datasketch-style design) against the exact subset
counters the paper's Calculators use, and finishes with a full-pipeline
run of the approximate tracking mode (``calculator="sketch"``) next to the
exact mode.

Run with::

    python examples/sketch_vs_exact.py
"""

from __future__ import annotations

from itertools import combinations

from repro.core import CooccurrenceStatistics, exact_jaccard
from repro.sketches import BloomFilter, CountMinSketch, MinHash, MinHashLSH
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


def build_statistics(n_documents: int = 5000) -> CooccurrenceStatistics:
    documents = TwitterLikeGenerator(
        WorkloadConfig(seed=31, n_topics=120, tags_per_topic=12)
    ).generate(n_documents)
    return CooccurrenceStatistics.from_documents(documents)


def bloom_candidate_inflation(statistics: CooccurrenceStatistics, n_tags: int = 120) -> None:
    tags = sorted(statistics.tags, key=lambda t: -statistics.tag_document_count(t))[:n_tags]
    true_pairs = {
        (a, b)
        for a, b in combinations(sorted(tags), 2)
        if statistics.documents_with_all([a, b])
    }
    filters = {}
    for tag in tags:
        bloom = BloomFilter(expected_items=200, false_positive_rate=0.05)
        bloom.update(statistics.tag_documents.get(tag, ()))
        filters[tag] = bloom
    candidates = {
        (a, b)
        for a, b in combinations(sorted(tags), 2)
        if any(doc in filters[b] for doc in statistics.tag_documents.get(a, ()))
    }
    print("--- Bloom filters: candidate co-occurring pairs -------------")
    print(f"  true co-occurring pairs : {len(true_pairs)}")
    print(f"  candidates from sketches: {len(candidates)}")
    print(f"  spurious candidates     : {len(candidates - true_pairs)} "
          f"({100 * len(candidates - true_pairs) / max(len(candidates), 1):.1f}% wasted work)")


def countmin_error(statistics: CooccurrenceStatistics) -> None:
    sketch = CountMinSketch(epsilon=0.002, delta=0.01)
    for tagset, count in statistics.tagset_counts.items():
        for pair in combinations(sorted(tagset), 2):
            sketch.add(frozenset(pair), count)
    pairs = sorted(
        statistics.tagset_counts, key=lambda t: -statistics.tagset_counts[t]
    )[:200]
    overestimates = 0
    for tagset in pairs:
        for pair in combinations(sorted(tagset), 2):
            true_count = len(statistics.documents_with_all(pair))
            if sketch.estimate(frozenset(pair)) > true_count:
                overestimates += 1
    print("\n--- Count-Min sketch: pair-count estimates ------------------")
    print(f"  memory: {sketch.depth} x {sketch.width} counters")
    print(f"  over-estimated pair counts: {overestimates}")


def minhash_vs_exact(statistics: CooccurrenceStatistics, n_tags: int = 50) -> None:
    tags = sorted(statistics.tags, key=lambda t: -statistics.tag_document_count(t))[:n_tags]
    signatures = {
        tag: MinHash.from_items(statistics.tag_documents.get(tag, ()), num_perm=256)
        for tag in tags
    }
    lsh = MinHashLSH(num_perm=256, bands=64)
    for tag in tags:
        lsh.insert(tag, signatures[tag])
    errors = []
    for a, b in combinations(tags, 2):
        truth = exact_jaccard(
            [statistics.tag_documents.get(a, set()), statistics.tag_documents.get(b, set())]
        )
        errors.append(abs(truth - signatures[a].jaccard(signatures[b])))
    print("\n--- MinHash / LSH (datasketch-style) -------------------------")
    print(f"  pairs compared      : {len(errors)}")
    print(f"  mean estimate error : {sum(errors) / len(errors):.4f}")
    print(f"  max estimate error  : {max(errors):.4f}")
    print(f"  LSH candidate pairs : {len(lsh.candidate_pairs())}")
    print("  (the paper's exact subset counters have zero error for covered tagsets)")


def pipeline_modes(n_documents: int = 5000) -> None:
    """Full-topology comparison: exact vs sketch Calculator modes."""
    from repro import SystemConfig, TagCorrelationSystem

    documents = TwitterLikeGenerator(
        WorkloadConfig(seed=31, n_topics=120, tags_per_topic=12)
    ).generate(n_documents)
    base = dict(
        algorithm="DS", k=6, n_partitioners=4, window_mode="count",
        window_size=1000, bootstrap_documents=400, quality_check_interval=200,
        report_interval_seconds=60.0,
    )
    print("\n--- approximate tracking mode: full pipeline ----------------")
    print(f"{'mode':>8} {'comm':>7} {'error':>8} {'coverage':>9} {'messages':>9} {'amortized':>10}")
    for mode in ("exact", "sketch"):
        report = TagCorrelationSystem(
            SystemConfig(calculator=mode, **base)
        ).run(documents)
        print(f"{mode:>8} {report.communication_avg:>7.3f} "
              f"{report.jaccard_mean_error:>8.4f} {report.jaccard_coverage:>9.3f} "
              f"{report.notification_messages:>9} {report.batch_amortization:>9.1f}x")


def main() -> None:
    statistics = build_statistics()
    print(f"workload: {statistics.n_tagged_documents} tagged documents, "
          f"{len(statistics.tags)} distinct tags\n")
    bloom_candidate_inflation(statistics)
    countmin_error(statistics)
    minhash_vs_exact(statistics)
    pipeline_modes()


if __name__ == "__main__":
    main()
