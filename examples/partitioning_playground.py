"""Compare the partitioning algorithms offline on a single window.

This example reproduces, on one window of documents, the trade-off at the
heart of the paper: communication overhead (replicated tags) versus load
balance.  It runs all partitioning algorithms — the paper's DS/SCC/SCL/SCI,
the hybrid DS+SCL splitter, and the classic baselines (hash, random,
Kernighan–Lin, spectral) — and prints their quality side by side, including
the Figure-1 toy example from the paper's introduction.

Run with::

    python examples/partitioning_playground.py
"""

from __future__ import annotations

from repro.core import CooccurrenceStatistics, documents_from_tagsets, gini_coefficient
from repro.partitioning import ALGORITHMS, make_partitioner
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


def quality_row(assignment, statistics) -> dict[str, float]:
    tagsets = statistics.tagsets
    loads = assignment.expected_calculator_loads(tagsets)
    return {
        "communication": assignment.communication_load(tagsets),
        "replication": assignment.replication_factor(),
        "gini": gini_coefficient(loads),
        "coverage": assignment.coverage(tagsets),
    }


def print_comparison(title: str, statistics: CooccurrenceStatistics, k: int) -> None:
    print(f"\n=== {title} (k={k}, {len(statistics.tags)} tags, "
          f"{len(statistics)} distinct tagsets) ===")
    print(f"{'algorithm':>10} {'communication':>14} {'replication':>12} "
          f"{'gini':>8} {'coverage':>10}")
    for name in ALGORITHMS:
        assignment = make_partitioner(name).partition(statistics, k)
        row = quality_row(assignment, statistics)
        print(f"{name:>10} {row['communication']:>14.3f} {row['replication']:>12.3f} "
              f"{row['gini']:>8.3f} {row['coverage']:>10.3f}")


def figure1_example() -> None:
    """The running example of Figure 1 in the paper."""
    tagsets = (
        [["munich", "beer", "soccer"]] * 10
        + [["beer", "pizza"]] * 4
        + [["munich", "oktoberfest"]] * 3
        + [["bavaria", "soccer"]] * 1
        + [["beach", "sunny"]] * 2
        + [["friday", "sunny"]] * 1
    )
    statistics = CooccurrenceStatistics.from_documents(
        documents_from_tagsets(tagsets)
    )
    print_comparison("Figure 1 example", statistics, k=2)
    ds = make_partitioner("DS").partition(statistics, 2)
    print("\nDS partitions of the Figure 1 example:")
    for partition in ds:
        print(f"  pr{partition.index}: {sorted(partition.tags)} (load {partition.load})")


def synthetic_window() -> None:
    """A realistic window of the synthetic Twitter-like stream."""
    documents = TwitterLikeGenerator(
        WorkloadConfig(seed=13, n_topics=150, tags_per_topic=15)
    ).generate(5000)
    statistics = CooccurrenceStatistics.from_documents(documents)
    print_comparison("Synthetic 5,000-document window", statistics, k=10)


def main() -> None:
    figure1_example()
    synthetic_window()


if __name__ == "__main__":
    main()
