"""Out-of-core window state: the same run, dict store vs spill store.

Runs one fanout-heavy stream twice — once with the default in-RAM
``dict`` counter store and once with ``counter_store="spill"`` (cold
counter segments frozen to sorted run files, k-way-merged back at report
time; see docs/ARCHITECTURE.md "Counter store") — then shows that every
reported metric and coefficient is bit-identical while the spill side's
``RunReport.store_stats`` accounts for the disk traffic that replaced
the resident table.

Run with::

    python examples/out_of_core.py
"""

from __future__ import annotations

from repro import SystemConfig, TagCorrelationSystem
from repro.operators import TrackerBolt, streams
from repro.workloads import TwitterLikeGenerator, WorkloadConfig

#: Deliberately tiny so even this example's small stream spills dozens of
#: runs per report round; production default is 65 536 (see
#: repro.store.DEFAULT_SPILL_THRESHOLD).
SPILL_THRESHOLD = 500


def run(counter_store: str):
    workload = WorkloadConfig(
        seed=7,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
        max_tags_per_tweet=8,
    )
    documents = TwitterLikeGenerator(workload).generate(6000)
    config = SystemConfig(
        algorithm="DS",
        k=4,
        n_partitioners=3,
        window_mode="count",
        window_size=1500,
        bootstrap_documents=600,
        quality_check_interval=250,
        repartition_threshold=0.5,
        report_interval_seconds=60.0,
        include_centralized_baseline=False,
        counter_store=counter_store,
        # spill_dir defaults to a private temp dir, removed on drain.
        spill_threshold=SPILL_THRESHOLD,
    )
    system = TagCorrelationSystem(config)
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    return report, tracker.coefficients()


def main() -> None:
    plain_report, plain_coefficients = run("dict")
    spill_report, spill_coefficients = run("spill")

    print("--- identical answers ------------------------------------")
    for field in ("documents_processed", "coefficients_reported",
                  "notification_messages", "n_repartitions"):
        plain = getattr(plain_report, field)
        spill = getattr(spill_report, field)
        marker = "==" if plain == spill else "!!"
        print(f"{field:<25}: {plain} {marker} {spill}")
    print(f"{'coefficients':<25}: "
          f"{'bit-identical' if plain_coefficients == spill_coefficients else 'DIFFER'}"
          f" ({len(spill_coefficients)} tagsets)")

    print("\n--- what the spill store did ------------------------------")
    stats = spill_report.store_stats
    lookups = stats["block_cache_hits"] + stats["block_cache_misses"]
    print(f"runs written              : {stats['runs_written']} "
          f"({stats['run_bytes_written'] / 1024:.0f} KiB)")
    print(f"entries spilled           : {stats['spilled_entries']}")
    print(f"merges                    : {stats['merges']} "
          f"({stats['parallel_merges']} parallel, "
          f"{stats['merge_seconds']:.2f}s)")
    if lookups:
        print(f"block cache hit rate      : "
              f"{stats['block_cache_hits'] / lookups:.1%}")
    print("\nResident window state stayed bounded by "
          f"spill_threshold={SPILL_THRESHOLD} entries per Calculator; "
          "the dict run held the full table in RAM.")


if __name__ == "__main__":
    main()
