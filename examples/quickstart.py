"""Quickstart: track tag correlations over a synthetic Twitter-like stream.

Generates a small stream, runs the full distributed topology (Parser →
Partitioner → Merger → Disseminator → Calculators → Tracker) with the
Disjoint Sets partitioning algorithm, and prints the evaluation metrics of
the run together with the strongest correlations found.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SystemConfig, TagCorrelationSystem
from repro.operators import TrackerBolt, streams
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


def main() -> None:
    # 1. A synthetic Twitter-like stream: Zipfian tag usage, topic
    #    vocabularies, new trends appearing over time.
    workload = WorkloadConfig(
        seed=7,
        tweets_per_second=50.0,
        n_topics=120,
        tags_per_topic=15,
        new_topic_rate=5.0,
        intra_topic_probability=0.92,
    )
    documents = TwitterLikeGenerator(workload).generate(8000)
    print(f"generated {len(documents)} documents "
          f"({sum(1 for d in documents if d.tags)} tagged)")

    # 2. Configure the distributed system: 8 Calculators, 5 Partitioners,
    #    repartition when quality degrades by more than 50 %.  Swap
    #    executor="process" (plus workers=N) to shard the Calculator/Tracker
    #    layer over worker processes, reporting_engine="scratch" to fall
    #    back to the original report path, subset_cache_size=N to size the
    #    Calculators' subset-enumeration LRU, or
    #    include_centralized_baseline=False to skip the ground-truth bolt —
    #    the logical metrics below are identical in every case (the last
    #    one simply omits the error rows).
    config = SystemConfig(
        algorithm="DS",
        k=8,
        n_partitioners=5,
        window_mode="count",
        window_size=1500,
        bootstrap_documents=600,
        quality_check_interval=250,
        repartition_threshold=0.5,
        report_interval_seconds=60.0,
        executor="inline",
    )

    # 3. Run and inspect the report.
    system = TagCorrelationSystem(config)
    report = system.run(documents)

    print("\n--- run report -------------------------------------------")
    print(f"algorithm                 : {report.algorithm}")
    print(f"calculator mode           : {report.calculator_mode}")
    print(f"reporting engine          : {report.reporting_engine}")
    if report.subset_cache_stats is not None:
        stats = report.subset_cache_stats
        lookups = stats["hits"] + stats["misses"]
        hit_rate = stats["hits"] / lookups if lookups else 0.0
        print(f"subset cache hit rate     : {hit_rate:.1%} "
              f"({stats['evictions']} evictions)")
    print(f"execution engine          : {report.executor_mode}"
          + (f" ({report.executor_workers} workers)"
             if report.executor_mode == "process" else ""))
    print(f"average communication     : {report.communication_avg:.3f} "
          f"(1.0 = no redundant forwarding)")
    print(f"notification messages     : {report.notification_messages} "
          f"(batched {report.batch_amortization:.1f}x)")
    print(f"load Gini coefficient     : {report.load_gini:.3f}")
    print(f"max Calculator load share : {report.load_max_share:.3f}")
    print(f"repartitions              : {report.n_repartitions} "
          f"{report.repartition_reasons}")
    print(f"single additions          : {report.single_additions_applied}")
    print(f"coefficients reported     : {report.coefficients_reported}")
    if report.jaccard is not None:
        print(f"jaccard coverage          : {report.jaccard_coverage:.3f}")
        print(f"jaccard mean error        : {report.jaccard_mean_error:.4f}")

    # 4. The Tracker holds the final coefficient per tagset; print the
    #    strongest correlations among reasonably frequent tagsets.
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    supports = tracker.supports()
    strongest = sorted(
        (
            (coefficient, tagset)
            for tagset, coefficient in tracker.coefficients().items()
            if supports[tagset] >= 5
        ),
        reverse=True,
    )[:10]
    print("\n--- strongest correlated tagsets (support >= 5) -----------")
    for coefficient, tagset in strongest:
        print(f"  J={coefficient:.3f}  {{{', '.join(sorted(tagset))}}}")


if __name__ == "__main__":
    main()
