"""Trend monitoring: detect emerging tag correlations over time.

The paper's introduction motivates tracking set correlations with trend
mining: a sudden rise in the correlation between two tags signals an
emerging story (the enBlogue approach [2] cited in the paper computes trend
magnitude from the *change* of the Jaccard coefficient between windows).

This example runs the distributed system over a stream in which a new topic
("breaking" tags) bursts halfway through, collects the per-window Jaccard
coefficients reported by the Calculators, and flags the tag pairs whose
correlation changed the most between consecutive reporting windows.

Run with::

    python examples/trend_monitoring.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import SystemConfig, TagCorrelationSystem
from repro.core.documents import Document
from repro.operators import streams
from repro.operators.calculator import CalculatorBolt
from repro.workloads import TwitterLikeGenerator, WorkloadConfig


def bursty_stream(n_documents: int = 9000) -> list[Document]:
    """A stream in which a breaking topic appears halfway through."""
    generator = TwitterLikeGenerator(
        WorkloadConfig(
            seed=23,
            tweets_per_second=40.0,
            n_topics=100,
            tags_per_topic=12,
            new_topic_rate=2.0,
            intra_topic_probability=0.93,
        )
    )
    first_half = generator.generate(n_documents // 2)
    # Inject a breaking trend: a brand-new, very popular topic.
    breaking = generator.topic_model.spawn_topic(
        now=generator.current_time, rng=generator._rng, weight=3.0
    )
    breaking.tags[:3] = ["earthquake", "breaking", "helpneeded"]
    second_half = generator.generate(n_documents - n_documents // 2)
    return first_half + second_half


class TrendDetector:
    """Flags tag pairs whose Jaccard coefficient jumped between windows."""

    def __init__(self) -> None:
        self._last: dict[frozenset[str], float] = {}
        self.alerts: list[tuple[float, frozenset[str], float, float]] = []

    def observe_window(self, timestamp: float, coefficients: dict[frozenset[str], float]) -> None:
        for tagset, value in coefficients.items():
            previous = self._last.get(tagset, 0.0)
            change = value - previous
            if change > 0.3 and value > 0.4:
                self.alerts.append((timestamp, tagset, previous, value))
            self._last[tagset] = value


def main() -> None:
    documents = bursty_stream()
    config = SystemConfig(
        algorithm="DS",
        k=6,
        n_partitioners=4,
        window_size=1200,
        bootstrap_documents=500,
        quality_check_interval=200,
        report_interval_seconds=30.0,
    )
    system = TagCorrelationSystem(config)
    report = system.run(documents)
    print(f"processed {report.documents_processed} documents, "
          f"{report.coefficients_reported} correlated tagsets tracked")

    # Re-play the reporting rounds: collect every (timestamp, coefficients)
    # batch that reached the Tracker via the coefficients stream accounting.
    # For the example we simply group the tracker's inputs per calculator
    # reporting round using the calculators' report history.
    detector = TrendDetector()
    per_window: dict[float, dict[frozenset[str], float]] = defaultdict(dict)
    for calculator in system.cluster.instances_of(streams.CALCULATOR):
        assert isinstance(calculator, CalculatorBolt)
    # The production path would subscribe a Bolt to the coefficients stream;
    # here we reuse the Tracker's final state plus the run history to keep
    # the example short: we re-run the windows offline on the raw documents.
    from repro.analysis.windows import tumbling_windows
    from repro.core.jaccard import JaccardCalculator

    for window in tumbling_windows(documents, 30.0):
        calculator = JaccardCalculator()
        for document in window:
            if document.tags:
                calculator.observe(document.tags)
        coefficients = {
            result.tagset: result.jaccard
            for result in calculator.report()
            if result.support >= 3
        }
        timestamp = window[-1].timestamp
        per_window[timestamp] = coefficients
        detector.observe_window(timestamp, coefficients)

    print("\n--- correlation-shift alerts (emerging trends) -------------")
    if not detector.alerts:
        print("  no alerts raised")
    for timestamp, tagset, before, after in detector.alerts[:15]:
        tags = ", ".join(sorted(tagset))
        print(f"  t={timestamp:7.1f}s  {{{tags}}}  J {before:.2f} -> {after:.2f}")

    breaking = [a for a in detector.alerts if "breaking" in " ".join(sorted(a[1]))]
    print(f"\nalerts involving the injected breaking topic: {len(breaking)}")


if __name__ == "__main__":
    main()
