#!/usr/bin/env python3
"""Docs link checker: verify that relative links and anchors resolve.

Scans the given markdown files for inline links and images
(``[text](target)``), skips external (``http(s)://``, ``mailto:``)
targets, and fails if

* a relative target does not exist on disk relative to the file that
  references it, or
* an anchored target (``FILE.md#section`` or a same-file ``#section``)
  names a fragment that no heading of the target markdown file produces
  under GitHub's slug rules (lowercase, spaces to hyphens, punctuation
  dropped, ``-1``/``-2``… suffixes for duplicates).

Usage::

    python tools/check_links.py README.md docs/ARCHITECTURE.md

Exit code 0 when every link resolves, 1 otherwise (with one line per broken
link).  Used by the docs job of the CI workflow; run it locally before
committing documentation changes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — excludes reference-style.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings (``# Title`` … ``###### Title``) at line start.
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

#: Characters GitHub keeps in a heading slug besides word chars and hyphens.
_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)


def iter_links(markdown: str):
    for match in _LINK_PATTERN.finditer(markdown):
        yield match.group(1)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading (without duplicate suffixes)."""
    # Strip * emphasis and ` code markers; literal underscores survive into
    # GitHub slugs (BENCH_throughput.json -> bench_throughputjson), so _ is
    # deliberately kept even though _emphasis_ would technically be dropped.
    text = re.sub(r"[*`]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # inline links
    text = _SLUG_STRIP.sub("", text.lower())
    return text.replace(" ", "-")


def heading_anchors(markdown: str) -> set[str]:
    """All anchor fragments the file's headings produce."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    # Strip fenced code blocks so commented '#' lines don't become headings.
    stripped = re.sub(r"```.*?```", "", markdown, flags=re.DOTALL)
    for match in _HEADING_PATTERN.finditer(stripped):
        slug = _slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = all good)."""
    errors = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    for target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative, _, fragment = target.partition("#")
        if relative:
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path  # same-file anchor
        if fragment and resolved.suffix.lower() == ".md":
            try:
                anchors = heading_anchors(resolved.read_text(encoding="utf-8"))
            except OSError as exc:
                errors.append(f"{path}: unreadable anchor target {target} ({exc})")
                continue
            if fragment.lower() not in anchors:
                errors.append(f"{path}: broken anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
