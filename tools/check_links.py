#!/usr/bin/env python3
"""Docs link checker: verify that relative links in markdown files resolve.

Scans the given markdown files for inline links and images
(``[text](target)``), skips external (``http(s)://``, ``mailto:``) and
pure-anchor targets, and fails if a relative target does not exist on disk
relative to the file that references it.

Usage::

    python tools/check_links.py README.md docs/ARCHITECTURE.md

Exit code 0 when every link resolves, 1 otherwise (with one line per broken
link).  Used by the docs job of the CI workflow; run it locally before
committing documentation changes.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — excludes reference-style.
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def iter_links(markdown: str):
    for match in _LINK_PATTERN.finditer(markdown):
        yield match.group(1)


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = all good)."""
    errors = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    for target in iter_links(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    errors: list[str] = []
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
