#!/usr/bin/env python3
"""Throughput regression gate: diff a fresh BENCH_throughput.json against
the committed snapshot and fail on large docs/sec regressions.

Usage::

    python tools/check_perf_regression.py BASELINE.json CANDIDATE.json \
        [--tolerance 0.2]

Cells are matched by ``(workload, scenario, repartition_handoff, executor,
requested_workers, reporting_engine)``; only the intersection of the two
files is compared, so a CI smoke run (a subset of the full matrix) checks
cleanly against a full committed snapshot.  Snapshots recorded before the
engine matrix default to the ``incremental`` engine key; snapshots recorded
before the scenario matrix default to the ``legacy`` scenario and ``none``
handoff keys.

Enforcement is **host-aware**: docs/sec is only comparable between runs of
the same machine class, so the gate is binding only when the two files'
``host`` blocks agree on platform and CPU count (e.g. a snapshot
regenerated on the machine that produced the committed one).  On a
different host — the usual CI case — every comparison is reported but
never fails the job; the numbers still land in the job log and the
uploaded artifact for eyeballing trends on a stable runner pool.

Within a matching host, ``inline`` cells are binding and ``process`` cells
are report-only: the sharded executor's figures on few-core machines are
IPC-bound and noisier than the tolerance (see docs/PERFORMANCE.md).

Besides overall docs/sec, the gate checks the **per-phase breakdown**
(schema 2's ``phase_seconds``): the ``stream`` phase of binding cells is
compared as stream-phase docs/sec (documents / stream seconds) under the
same tolerance, so a regression in the substrate hot path cannot hide
behind an improvement in the reporting phase (or vice versa).  Cells
carrying the ``report_rounds`` attribution additionally gate the
**report-round share** of the stream phase (in-stream report seconds /
stream seconds; the share may grow by at most ``tolerance`` *relative to
the baseline share*, with a 5-share-point noise floor): a creeping
in-stream report cost fails even while total stream docs/sec still
squeaks past.  Cells that record a ``migration_stall`` phase (runs with
live-repartitioning handoffs) gate the **migration-stall share** the same
way, and the stall is subtracted from the stream seconds first so stream
docs/sec stays a pure hot-path number.  The phase gates only *bind* when the baseline phase
lasted at least ``MIN_BINDING_PHASE_SECONDS`` (0.5 s): shorter phases —
the small workload's ~0.13 s stream phase — swing beyond any usable
tolerance between a best-of-N snapshot and a single smoke run on a
shared host, so they are reported without failing the job.  Cells
missing ``phase_seconds`` or ``report_rounds`` on either side (older
snapshots) skip the respective check.

The gate also understands ``BENCH_service_latency.json`` snapshots
(``generated_by: benchmarks/perf/service_latency.py``): service cells are
matched by ``(cell, ingest_batch, queue_limit, query_clients)`` and gate
served docs/sec downward like an inline cell, plus the ingest-ack and
under-load query p95 latencies *upward* (each may grow by at most
``tolerance`` relative to the baseline, with a 2 ms noise floor) — again
binding only on matching hosts.

And it understands ``BENCH_spill.json`` snapshots (``generated_by:
benchmarks/perf/spill.py``, the out-of-core store bench): spill cells
are matched by ``(workload, counter_store, tracker_store)`` and gate
docs/sec *downward* like a throughput cell, while ``rss_total_mb``,
``peak_resident_counter_entries`` and (on cells that record it)
``peak_resident_coefficient_entries`` bind *upward* — each may grow by
at most ``tolerance`` relative to the baseline, with a 64 MB /
2048-entry noise floor — because the bench's whole point is that those
figures stay flat.  Snapshots recorded before the tracker-contrast
round default to the ``dict`` tracker key.  RSS comparisons, like
docs/sec, only bind on matching hosts.

Both files must be the same kind of snapshot.

Exit codes: 0 = no binding regression, 1 = binding regression found,
2 = usage or schema error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _usage_error(message: str) -> SystemExit:
    """Exit code 2 (usage/schema), distinct from 1 (binding regression)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot read {path}: {exc}")
    if "runs" not in data or "host" not in data:
        raise _usage_error(f"{path} is not a BENCH_throughput.json "
                           "(missing 'runs'/'host')")
    return data


def _cells(data: dict) -> dict[tuple, dict]:
    cells = {}
    for run in data["runs"]:
        key = (
            run["workload"],
            # Scenario + handoff key the workload-shape cells: a trending
            # cell must never be compared against a legacy cell of the
            # same name, and a live-repartition cell (which pays migration
            # stalls) must never be compared against its plain twin.
            # Snapshots recorded before the scenario matrix carry neither
            # field and default to the legacy/no-handoff key.
            run.get("scenario", "legacy"),
            run.get("repartition_handoff", "none"),
            run["executor"],
            run.get("requested_workers", 0),
            run.get("reporting_engine", "incremental"),
        )
        cells[key] = run
    return cells


def hosts_comparable(baseline: dict, candidate: dict) -> bool:
    """Same platform string and CPU count — the docs/sec-comparability bar."""
    base_host, cand_host = baseline["host"], candidate["host"]
    return (
        base_host.get("platform") == cand_host.get("platform")
        and base_host.get("cpu_count") == cand_host.get("cpu_count")
    )


#: Phase gates only bind when the baseline phase lasted at least this long:
#: on a shared host, a sub-half-second phase swings well beyond any usable
#: tolerance between a best-of-N snapshot and a single smoke run (the small
#: workload's ~0.13 s stream phase reads ±30% across minutes), so shorter
#: phases are reported without ever failing the job.
MIN_BINDING_PHASE_SECONDS = 0.5


def _stream_seconds(cell: dict) -> float | None:
    """Net stream seconds: the stream phase minus migration stall time.

    Repartition handoffs stall the stream while Calculator state migrates;
    that time is gated separately (as the stall share below), so it is
    subtracted here to keep stream docs/sec a pure substrate-hot-path
    number.  Cells recorded before the live-repartitioning PR have no
    ``migration_stall`` key and default to zero stall.
    """
    phases = cell.get("phase_seconds")
    if not phases:
        return None
    stream = phases.get("stream")
    if stream is None:
        return None
    return stream - phases.get("migration_stall", 0.0)


def _stream_docs_per_second(cell: dict) -> float | None:
    """Stream-phase throughput of one cell; None when unavailable."""
    stream = _stream_seconds(cell)
    documents = cell.get("documents")
    if not stream or not documents:
        return None
    return documents / stream


def _report_share(cell: dict) -> float | None:
    """In-stream report rounds' share of the stream phase; None when the
    cell lacks the ``report_rounds`` attribution or a stream time."""
    rounds = cell.get("report_rounds")
    if not rounds:
        return None
    report_seconds = rounds.get("report_seconds")
    stream = _stream_seconds(cell)
    if report_seconds is None or not stream:
        return None
    return report_seconds / stream


def _stall_share(cell: dict) -> float | None:
    """Migration stall time as a share of the (net) stream phase.

    ``None`` when the cell predates the stall attribution — distinguishing
    "recorded as zero" from "not recorded", so the gate only compares cells
    that actually carry the phase on both sides.
    """
    phases = cell.get("phase_seconds")
    if not phases or "migration_stall" not in phases:
        return None
    stream = _stream_seconds(cell)
    if not stream:
        return None
    return phases["migration_stall"] / stream


def compare(baseline: dict, candidate: dict, tolerance: float) -> int:
    """Print the per-cell diff; return the number of binding regressions."""
    binding = hosts_comparable(baseline, candidate)
    if not binding:
        print("note: hosts differ "
              f"({baseline['host'].get('platform')}/{baseline['host'].get('cpu_count')}cpu "
              f"vs {candidate['host'].get('platform')}/{candidate['host'].get('cpu_count')}cpu) "
              "- reporting only, nothing can fail")
    base_cells = _cells(baseline)
    cand_cells = _cells(candidate)
    shared = sorted(set(base_cells) & set(cand_cells))
    if not shared:
        raise _usage_error("the two files share no benchmark cells")
    regressions = 0
    for key in shared:
        workload, scenario, handoff, executor, workers, engine = key
        old = base_cells[key]["docs_per_second"]
        new = cand_cells[key]["docs_per_second"]
        ratio = new / old if old else float("inf")
        enforced = binding and executor == "inline"
        regressed = ratio < 1.0 - tolerance
        status = "ok"
        if regressed:
            status = "REGRESSION" if enforced else "regression (report-only)"
            if enforced:
                regressions += 1
        label = executor if executor == "inline" else f"{executor}({workers}w)"
        label = f"{label}/{engine}"
        if handoff != "none":
            label = f"{label}+{handoff}"
        if scenario != "legacy" and scenario != workload:
            label = f"{label} [{scenario}]"
        print(f"[perf-diff] {workload:>6} / {label:<24} "
              f"{old:>9.1f} -> {new:>9.1f} docs/s  ({ratio:5.2f}x)  {status}")
        # Per-phase breakdown: the stream phase binds like the overall
        # rate, but only when the baseline phase clears the noise floor.
        base_seconds = _stream_seconds(base_cells[key])
        phase_binding = (
            enforced
            and base_seconds is not None
            and base_seconds >= MIN_BINDING_PHASE_SECONDS
        )
        old_stream = _stream_docs_per_second(base_cells[key])
        new_stream = _stream_docs_per_second(cand_cells[key])
        if old_stream is not None and new_stream is not None:
            stream_ratio = new_stream / old_stream if old_stream else float("inf")
            stream_regressed = stream_ratio < 1.0 - tolerance
            stream_status = "ok"
            if stream_regressed:
                if phase_binding:
                    stream_status = "REGRESSION"
                    regressions += 1
                elif enforced:
                    stream_status = "regression (below noise floor)"
                else:
                    stream_status = "regression (report-only)"
            print(f"[perf-diff] {workload:>6} / {label:<24} "
                  f"{old_stream:>9.1f} -> {new_stream:>9.1f} docs/s "
                  f"({stream_ratio:5.2f}x)  [stream phase]  {stream_status}")
        # Report-round share of the stream phase: a creeping in-stream
        # report cost must not hide inside an otherwise-passing stream
        # phase.  The share is a ratio of two same-run wall-clocks, so it
        # is steadier than docs/sec — but still only binding on a matching
        # host.  The tolerance is read as absolute share points.
        old_share = _report_share(base_cells[key])
        new_share = _report_share(cand_cells[key])
        if old_share is not None and new_share is not None:
            # Relative tolerance with a 5-share-point noise floor: a small
            # baseline share (say 10%) must not be allowed to triple just
            # because the absolute growth stays under the tolerance.
            share_regressed = (
                new_share - old_share > max(0.05, tolerance * old_share)
            )
            share_status = "ok"
            if share_regressed:
                if phase_binding:
                    share_status = "REGRESSION"
                    regressions += 1
                elif enforced:
                    share_status = "regression (below noise floor)"
                else:
                    share_status = "regression (report-only)"
            print(f"[perf-diff] {workload:>6} / {label:<24} "
                  f"{old_share:>8.1%} -> {new_share:>8.1%} of stream "
                  f"[report-round share]  {share_status}")
        # Migration stall share: repartition handoffs are allowed to stall
        # the stream, but the stall must not creep — same relative
        # tolerance and noise floor as the report-round share.
        old_stall = _stall_share(base_cells[key])
        new_stall = _stall_share(cand_cells[key])
        if old_stall is not None and new_stall is not None:
            stall_regressed = (
                new_stall - old_stall > max(0.05, tolerance * old_stall)
            )
            stall_status = "ok"
            if stall_regressed:
                if phase_binding:
                    stall_status = "REGRESSION"
                    regressions += 1
                elif enforced:
                    stall_status = "regression (below noise floor)"
                else:
                    stall_status = "regression (report-only)"
            print(f"[perf-diff] {workload:>6} / {label:<24} "
                  f"{old_stall:>8.1%} -> {new_stall:>8.1%} of stream "
                  f"[migration-stall share]  {stall_status}")
    return regressions


#: Latency growth below this many milliseconds never fails the job: sub-ms
#: p95 swings on a shared host are scheduler noise, not regressions.
LATENCY_NOISE_FLOOR_MS = 2.0

#: ``generated_by`` marker of service-latency snapshots.
SERVICE_GENERATOR = "benchmarks/perf/service_latency.py"


def _service_cells(data: dict) -> dict[tuple, dict]:
    cells = {}
    for run in data["runs"]:
        key = (
            run["cell"],
            run.get("ingest_batch", 0),
            run.get("queue_limit", 0),
            run.get("query_clients", 0),
        )
        cells[key] = run
    return cells


def compare_service(baseline: dict, candidate: dict, tolerance: float) -> int:
    """Service-latency diff: throughput binds down, p95 latencies bind up."""
    binding = hosts_comparable(baseline, candidate)
    if not binding:
        print("note: hosts differ "
              f"({baseline['host'].get('platform')}/{baseline['host'].get('cpu_count')}cpu "
              f"vs {candidate['host'].get('platform')}/{candidate['host'].get('cpu_count')}cpu) "
              "- reporting only, nothing can fail")
    base_cells = _service_cells(baseline)
    cand_cells = _service_cells(candidate)
    shared = sorted(set(base_cells) & set(cand_cells))
    if not shared:
        raise _usage_error("the two files share no benchmark cells")
    regressions = 0
    for key in shared:
        cell = key[0]
        old_cell, new_cell = base_cells[key], cand_cells[key]
        old = old_cell["docs_per_second"]
        new = new_cell["docs_per_second"]
        ratio = new / old if old else float("inf")
        regressed = ratio < 1.0 - tolerance
        status = "ok"
        if regressed:
            status = "REGRESSION" if binding else "regression (report-only)"
            if binding:
                regressions += 1
        print(f"[perf-diff] {cell:<20} {old:>9.1f} -> {new:>9.1f} docs/s  "
              f"({ratio:5.2f}x)  {status}")
        for metric in ("ingest_ack", "query_under_load"):
            old_p95 = (old_cell.get(metric) or {}).get("p95_ms")
            new_p95 = (new_cell.get(metric) or {}).get("p95_ms")
            if old_p95 is None or new_p95 is None:
                continue
            grew = (
                new_p95 - old_p95
                > max(LATENCY_NOISE_FLOOR_MS, tolerance * old_p95)
            )
            metric_status = "ok"
            if grew:
                metric_status = (
                    "REGRESSION" if binding else "regression (report-only)"
                )
                if binding:
                    regressions += 1
            print(f"[perf-diff] {cell:<20} {old_p95:>9.3f} -> "
                  f"{new_p95:>9.3f} ms p95  [{metric}]  {metric_status}")
    return regressions


#: ``generated_by`` marker of spill-store snapshots.
SPILL_GENERATOR = "benchmarks/perf/spill.py"

#: Upward-binding spill metrics below these absolute growths never fail
#: the job: allocator jitter moves whole-process RSS by tens of MB between
#: runs, and the resident-entries figure wobbles by the hot tail's fill
#: level at the moment the last spill fired.
RSS_NOISE_FLOOR_MB = 64.0
ENTRIES_NOISE_FLOOR = 2048


def _snapshot_kind(data: dict) -> str:
    generator = data.get("generated_by")
    if generator == SERVICE_GENERATOR:
        return "service"
    if generator == SPILL_GENERATOR:
        return "spill"
    return "throughput"


def _spill_cells(data: dict) -> dict[tuple, dict]:
    return {
        (
            run["workload"],
            run.get("counter_store", "dict"),
            # Snapshots recorded before the tracker-contrast round carry
            # no tracker_store field and default to the dict tracker.
            run.get("tracker_store", "dict"),
        ): run
        for run in data["runs"]
    }


def compare_spill(baseline: dict, candidate: dict, tolerance: float) -> int:
    """Spill-bench diff: docs/sec binds down, RSS and resident entries up."""
    binding = hosts_comparable(baseline, candidate)
    if not binding:
        print("note: hosts differ "
              f"({baseline['host'].get('platform')}/{baseline['host'].get('cpu_count')}cpu "
              f"vs {candidate['host'].get('platform')}/{candidate['host'].get('cpu_count')}cpu) "
              "- reporting only, nothing can fail")
    base_cells = _spill_cells(baseline)
    cand_cells = _spill_cells(candidate)
    shared = sorted(set(base_cells) & set(cand_cells))
    if not shared:
        raise _usage_error("the two files share no benchmark cells")
    regressions = 0
    for key in shared:
        workload, store, tracker_store = key
        label = f"{workload}/{store}"
        if tracker_store != "dict":
            label = f"{label}+tracker={tracker_store}"
        old_cell, new_cell = base_cells[key], cand_cells[key]
        old = old_cell["docs_per_second"]
        new = new_cell["docs_per_second"]
        ratio = new / old if old else float("inf")
        regressed = ratio < 1.0 - tolerance
        status = "ok"
        if regressed:
            status = "REGRESSION" if binding else "regression (report-only)"
            if binding:
                regressions += 1
        print(f"[perf-diff] {label:<30} {old:>9.1f} -> {new:>9.1f} docs/s  "
              f"({ratio:5.2f}x)  {status}")
        # The memory figures regress by *growing*.  Relative tolerance with
        # absolute noise floors: whole-process RSS wobbles tens of MB run
        # to run, and the resident-entries peak by the hot tail's fill
        # level at the last spill.
        upward = (
            ("rss_total_mb", RSS_NOISE_FLOOR_MB, "MB rss"),
            ("peak_resident_counter_entries", ENTRIES_NOISE_FLOOR,
             "resident entries"),
            ("peak_resident_coefficient_entries", ENTRIES_NOISE_FLOOR,
             "resident coefficients"),
        )
        for metric, floor, unit in upward:
            old_value = old_cell.get(metric)
            new_value = new_cell.get(metric)
            if old_value is None or new_value is None:
                continue
            grew = new_value - old_value > max(floor, tolerance * old_value)
            metric_status = "ok"
            if grew:
                metric_status = (
                    "REGRESSION" if binding else "regression (report-only)"
                )
                if binding:
                    regressions += 1
            print(f"[perf-diff] {label:<30} {old_value:>9.1f} -> "
                  f"{new_value:>9.1f} {unit}  {metric_status}")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh throughput snapshot regresses the "
                    "committed one beyond the tolerance (same-host runs only)."
    )
    parser.add_argument("baseline", type=Path,
                        help="committed BENCH_throughput.json")
    parser.add_argument("candidate", type=Path,
                        help="freshly generated BENCH_throughput.json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop before failing "
                             "(default 0.2 = 20%%)")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("--tolerance must be in (0, 1)")

    baseline = _load(args.baseline)
    candidate = _load(args.candidate)
    base_kind = _snapshot_kind(baseline)
    cand_kind = _snapshot_kind(candidate)
    if base_kind != cand_kind:
        raise _usage_error(
            f"cannot diff a {base_kind} snapshot against a {cand_kind} one"
        )
    comparator = {
        "service": compare_service,
        "spill": compare_spill,
        "throughput": compare,
    }[base_kind]
    regressions = comparator(baseline, candidate, args.tolerance)
    if regressions:
        print(f"[perf-diff] {regressions} binding regression(s) beyond "
              f"{args.tolerance:.0%}")
        return 1
    print("[perf-diff] no binding regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
