#!/usr/bin/env python3
"""Record the logical-equivalence fixture pinned by the wire-API tests.

The substrate's wire format is an implementation detail: redesigning it (slot
tuples, batched links, executor IPC units) must never move a logical metric
or a reported coefficient.  This tool runs the full (executor × calculator
mode × reporting engine) grid over a deterministic workload and records, per
cell, every logical ``RunReport`` field plus content hashes of the Tracker's
final coefficients and supports.  ``tests/pipeline/test_wire_equivalence.py``
replays the same grid and asserts bit-identical results against the recorded
snapshot, so any wire-level change that perturbs observable behaviour fails
loudly.

The committed fixture was recorded at PR 3 (the dict-backed wire format),
immediately before the slot-tuple redesign.  Regenerate only when a PR
*intentionally* changes logical behaviour::

    PYTHONPATH=src python tools/record_equivalence_fixture.py

which rewrites ``tests/pipeline/fixtures/wire_equivalence.json``.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

FIXTURE_PATH = _REPO_ROOT / "tests" / "pipeline" / "fixtures" / "wire_equivalence.json"

#: Workload of the pinned grid (shared with the replaying test).
WORKLOAD = dict(
    n_documents=2000,
    seed=11,
    tweets_per_second=50.0,
    n_topics=100,
    tags_per_topic=14,
    new_topic_rate=5.0,
    intra_topic_probability=0.9,
)

#: System configuration shared by every cell (mirrors the equivalence suites).
BASE_CONFIG = dict(
    algorithm="DS",
    k=4,
    n_partitioners=3,
    window_mode="count",
    window_size=500,
    bootstrap_documents=200,
    quality_check_interval=120,
    repartition_threshold=0.5,
    report_interval_seconds=30.0,
)

#: Overrides of the ``-repartition`` cells: two forced mid-stream swaps
#: with the coordinated state-migration handoff.  These cells pin the
#: handoff protocol itself — the quiesce, the Calculator drains and the
#: migration records all have to replay bit-identically.
_REPARTITION = dict(
    repartition_policy="fixed",
    repartition_at=(700, 1400),
    repartition_handoff="migrate",
)

#: The grid: cell name -> config overrides.  The reporting engines only
#: exist in exact mode, so the sketch cells run the default engine only.
#: The delta cells were appended when the engine landed; their records are
#: byte-for-byte the scratch cells' (the engines are pinned bit-identical),
#: so delta is still pinned against the PR 3 recording.  The
#: ``-repartition`` cells were appended with the live-repartitioning PR;
#: the original eight records are untouched.
CELLS = {
    "exact-incremental-inline": dict(calculator="exact", reporting_engine="incremental"),
    "exact-incremental-process": dict(
        calculator="exact", reporting_engine="incremental", executor="process", workers=2
    ),
    "exact-scratch-inline": dict(calculator="exact", reporting_engine="scratch"),
    "exact-scratch-process": dict(
        calculator="exact", reporting_engine="scratch", executor="process", workers=2
    ),
    "exact-delta-inline": dict(calculator="exact", reporting_engine="delta"),
    "exact-delta-process": dict(
        calculator="exact", reporting_engine="delta", executor="process", workers=2
    ),
    "sketch-inline": dict(calculator="sketch"),
    "sketch-process": dict(calculator="sketch", executor="process", workers=2),
    "exact-incremental-inline-repartition": dict(
        calculator="exact", reporting_engine="incremental", **_REPARTITION
    ),
    "exact-incremental-process-repartition": dict(
        calculator="exact", reporting_engine="incremental",
        executor="process", workers=2, **_REPARTITION,
    ),
    "exact-delta-inline-repartition": dict(
        calculator="exact", reporting_engine="delta", **_REPARTITION
    ),
    "sketch-inline-repartition": dict(calculator="sketch", **_REPARTITION),
}

#: RunReport fields pinned bit-identically per cell.
PINNED_FIELDS = (
    "documents_processed",
    "tagged_documents",
    "communication_avg",
    "calculator_loads",
    "load_gini",
    "load_max_share",
    "n_repartitions",
    "repartition_reasons",
    "single_addition_requests",
    "single_additions_applied",
    "coefficients_reported",
    "duplicate_reports",
    "notification_messages",
    "batch_amortization",
)


def generate_documents():
    """The deterministic workload every cell replays."""
    from repro.workloads import TwitterLikeGenerator, WorkloadConfig

    spec = dict(WORKLOAD)
    n_documents = spec.pop("n_documents")
    return TwitterLikeGenerator(WorkloadConfig(**spec)).generate(n_documents)


def coefficient_digest(pairs) -> str:
    """Content hash of ``(tagset, float)`` pairs, canonically ordered.

    ``repr`` of the float keeps full precision, so two runs only share a
    digest when every coefficient is bit-identical.
    """
    lines = sorted(
        ",".join(sorted(tagset)) + "=" + repr(value) for tagset, value in pairs
    )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def capture_cell(documents, overrides) -> dict:
    """Run one grid cell and flatten it to a JSON-stable record."""
    from repro.operators import TrackerBolt, streams
    from repro.pipeline import SystemConfig, TagCorrelationSystem

    config = SystemConfig(**{**BASE_CONFIG, **overrides})
    system = TagCorrelationSystem(config)
    report = system.run(documents)
    tracker = next(
        bolt
        for bolt in system.cluster.instances_of(streams.TRACKER)
        if isinstance(bolt, TrackerBolt)
    )
    record = {field: getattr(report, field) for field in PINNED_FIELDS}
    record["jaccard_coverage"] = report.jaccard_coverage
    record["jaccard_mean_error"] = report.jaccard_mean_error
    record["coefficients_sha256"] = coefficient_digest(
        tracker.coefficients().items()
    )
    record["supports_sha256"] = coefficient_digest(tracker.supports().items())
    if report.migrations:
        # Only the repartition cells migrate; omitting the key elsewhere
        # keeps the original records byte-identical to the PR 3 fixture.
        record["migrations"] = [
            [m.epoch, m.documents_processed, m.migrated_triples, m.aborted]
            for m in report.migrations
        ]
    return record


def capture() -> dict:
    documents = generate_documents()
    return {
        "description": (
            "Logical metrics + coefficient digests of the executor x mode x "
            "engine grid; recorded at the dict-backed wire format (PR 3)."
        ),
        "workload": WORKLOAD,
        "base_config": BASE_CONFIG,
        "cells": {
            name: capture_cell(documents, overrides)
            for name, overrides in CELLS.items()
        },
    }


def main() -> int:
    fixture = capture()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(fixture, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {FIXTURE_PATH}")
    for name, cell in fixture["cells"].items():
        print(f"  {name}: {cell['coefficients_reported']} coefficients, "
              f"digest {cell['coefficients_sha256'][:12]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
